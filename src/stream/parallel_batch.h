// Parallel batch analysis: time-partitioned StreamEngines, merged.
//
// For a trace that is already on disk there is no ingest queue to hide
// behind: the bottleneck is the single-threaded Push loop. This splits the
// chronological record span into contiguous time partitions, runs one
// StreamEngine per partition on a ParallelRunner pool, and folds the
// results through StreamEngine::Merge with boundary stitching - each
// partition seam contributes the one inter-attack interval a single engine
// would have observed there, so interval and duration band counts are
// exactly those of a sequential run. Quantiles stay sketch-approximate
// (partitions run at half epsilon to absorb merge error) and pending
// collaboration groups that straddle a seam are stitched by the
// window-overlap heuristic documented in stream/collab_window.h.
#ifndef DDOSCOPE_STREAM_PARALLEL_BATCH_H_
#define DDOSCOPE_STREAM_PARALLEL_BATCH_H_

#include <cstddef>
#include <span>

#include "stream/engine.h"

namespace ddos::stream {

struct ParallelBatchOptions {
  std::size_t partitions = 0;  // 0: one per worker thread
  std::size_t threads = 0;     // 0: common::DefaultThreadCount()
  StreamEngineConfig engine;
  // Optional live geo enrichment (stream/geo_enrich.h): each partition
  // enriches as it pushes and the merged engine carries the folded view.
  // The database must outlive the call.
  const geo::GeoMmdb* geo = nullptr;
  GeoEnrichConfig geo_enrich;
};

// Analyzes `attacks` (chronological, as attack CSVs are written) and
// returns the merged, Finish()ed engine. Propagates any worker exception.
StreamEngine AnalyzeAttacksInParallel(
    std::span<const data::AttackRecord> attacks,
    const ParallelBatchOptions& options = {});

}  // namespace ddos::stream

#endif  // DDOSCOPE_STREAM_PARALLEL_BATCH_H_
