#include "stream/sketch.h"

#include <cmath>

namespace ddos::stream {

GkQuantileSketch::GkQuantileSketch(double epsilon)
    : epsilon_(epsilon > 0.0 && epsilon < 0.5 ? epsilon : 0.005),
      compress_period_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(1.0 / (2.0 * epsilon_)))) {}

std::uint64_t GkQuantileSketch::MaxGap() const {
  const double cap = 2.0 * epsilon_ * static_cast<double>(n_);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cap));
}

void GkQuantileSketch::Add(double x) {
  ++n_;
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), x,
      [](double value, const Tuple& t) { return value < t.v; });
  // Interior insertions take the loosest allowed rank uncertainty; the
  // extremes stay exact so min/max queries never drift.
  std::uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) delta = MaxGap() - 1;
  tuples_.insert(it, Tuple{x, 1, delta});
  if (++since_compress_ >= compress_period_) {
    Compress();
    since_compress_ = 0;
  }
}

void GkQuantileSketch::Merge(const GkQuantileSketch& other) {
  if (other.n_ == 0) return;
  epsilon_ = std::max(epsilon_, other.epsilon_);
  compress_period_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(1.0 / (2.0 * epsilon_)));
  if (n_ == 0) {
    n_ = other.n_;
    tuples_ = other.tuples_;
    since_compress_ = 0;
    Compress();
    return;
  }
  // Classical COMBINE: interleave by value; a tuple adopted from one side
  // additionally absorbs the rank uncertainty of its successor on the
  // other side (g + delta - 1), so rmin/rmax stay valid bounds over the
  // union. Ends stay exact: the global min's successor has g = 1, delta =
  // 0 and the global max has no successor.
  const auto successor_slack = [](const std::vector<Tuple>& tuples,
                                  std::size_t next) -> std::uint64_t {
    return next < tuples.size() ? tuples[next].g + tuples[next].delta - 1 : 0;
  };
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < tuples_.size() || j < other.tuples_.size()) {
    const bool take_ours =
        j >= other.tuples_.size() ||
        (i < tuples_.size() && tuples_[i].v <= other.tuples_[j].v);
    Tuple t = take_ours ? tuples_[i] : other.tuples_[j];
    t.delta += take_ours ? successor_slack(other.tuples_, j)
                         : successor_slack(tuples_, i);
    (take_ours ? i : j) += 1;
    merged.push_back(t);
  }
  tuples_ = std::move(merged);
  n_ += other.n_;
  since_compress_ = 0;
  Compress();
}

void GkQuantileSketch::Compress() {
  if (tuples_.size() < 3) return;
  const std::uint64_t cap = MaxGap();
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  for (std::size_t i = 1; i < tuples_.size(); ++i) {
    Tuple t = tuples_[i];
    // Merge the left neighbor into t while the combined tuple keeps the
    // g + delta <= 2*epsilon*n invariant; the first tuple (the minimum)
    // is never merged away.
    while (out.size() >= 2 && out.back().g + t.g + t.delta <= cap) {
      t.g += out.back().g;
      out.pop_back();
    }
    out.push_back(t);
  }
  tuples_ = std::move(out);
}

double GkQuantileSketch::Quantile(double q) const {
  if (tuples_.empty()) return 0.0;
  const double qc = std::clamp(q, 0.0, 1.0);
  const double rank =
      std::max(1.0, std::ceil(qc * static_cast<double>(n_)));
  const double allowed = epsilon_ * static_cast<double>(n_);
  std::uint64_t rmin = 0;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    const double rmax =
        static_cast<double>(rmin) + static_cast<double>(tuples_[i].delta);
    if (rmax > rank + allowed) {
      return tuples_[i == 0 ? 0 : i - 1].v;
    }
  }
  return tuples_.back().v;
}

std::size_t GkQuantileSketch::ApproxMemoryBytes() const {
  return sizeof(*this) + tuples_.capacity() * sizeof(Tuple);
}

void GkQuantileSketch::SerializeTo(std::ostream& out) const {
  io::WriteF64(out, epsilon_);
  io::WriteU64(out, n_);
  io::WriteU64(out, compress_period_);
  io::WriteU64(out, since_compress_);
  io::WriteU64(out, tuples_.size());
  for (const Tuple& t : tuples_) {
    io::WriteF64(out, t.v);
    io::WriteU64(out, t.g);
    io::WriteU64(out, t.delta);
  }
}

void GkQuantileSketch::DeserializeFrom(std::istream& in) {
  epsilon_ = io::ReadF64(in);
  if (!(epsilon_ > 0.0 && epsilon_ < 0.5)) epsilon_ = 0.005;
  n_ = io::ReadU64(in);
  compress_period_ = std::max<std::uint64_t>(1, io::ReadU64(in));
  since_compress_ = io::ReadU64(in);
  const std::uint64_t count = io::ReadU64(in);
  tuples_.clear();
  tuples_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Tuple t;
    t.v = io::ReadF64(in);
    t.g = io::ReadU64(in);
    t.delta = io::ReadU64(in);
    tuples_.push_back(t);
  }
}

KmvDistinctCounter::KmvDistinctCounter(std::size_t k)
    : k_(std::max<std::size_t>(k, 16)) {}

void KmvDistinctCounter::Add(std::uint64_t key) {
  const std::uint64_t h = MixHash64(key);
  if (smallest_.size() < k_) {
    smallest_.insert(h);
    return;
  }
  const auto last = std::prev(smallest_.end());
  if (h >= *last) return;  // not among the k smallest
  if (smallest_.insert(h).second) smallest_.erase(std::prev(smallest_.end()));
}

void KmvDistinctCounter::Merge(const KmvDistinctCounter& other) {
  k_ = std::min(k_, other.k_);
  smallest_.insert(other.smallest_.begin(), other.smallest_.end());
  while (smallest_.size() > k_) smallest_.erase(std::prev(smallest_.end()));
}

double KmvDistinctCounter::Estimate() const {
  if (smallest_.size() < k_) return static_cast<double>(smallest_.size());
  // The k-th smallest of n uniform hashes sits near k/n of the hash range.
  const double kth = static_cast<double>(*std::prev(smallest_.end()));
  const double range = std::ldexp(1.0, 64);  // 2^64
  return (static_cast<double>(k_) - 1.0) / (kth / range);
}

std::size_t KmvDistinctCounter::ApproxMemoryBytes() const {
  // std::set node overhead: three pointers + color, rounded up.
  return sizeof(*this) + smallest_.size() * (sizeof(std::uint64_t) + 40);
}

void KmvDistinctCounter::SerializeTo(std::ostream& out) const {
  io::WriteU64(out, k_);
  io::WriteU64(out, smallest_.size());
  for (const std::uint64_t h : smallest_) io::WriteU64(out, h);
}

void KmvDistinctCounter::DeserializeFrom(std::istream& in) {
  k_ = std::max<std::size_t>(io::ReadU64(in), 16);
  const std::uint64_t n = io::ReadU64(in);
  smallest_.clear();
  for (std::uint64_t i = 0; i < n; ++i) smallest_.insert(io::ReadU64(in));
}

}  // namespace ddos::stream
