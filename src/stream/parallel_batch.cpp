#include "stream/parallel_batch.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/parallel.h"

namespace ddos::stream {

StreamEngine AnalyzeAttacksInParallel(
    std::span<const data::AttackRecord> attacks,
    const ParallelBatchOptions& options) {
  const std::size_t threads =
      options.threads == 0 ? common::DefaultThreadCount() : options.threads;
  std::size_t partitions =
      options.partitions == 0 ? threads : options.partitions;
  partitions = std::max<std::size_t>(1, partitions);
  partitions = std::min(partitions, std::max<std::size_t>(1, attacks.size()));

  StreamEngineConfig partition_config = options.engine;
  if (partitions > 1) {
    // Merge error is additive in the worst case; halving the per-partition
    // epsilon keeps the common pairwise case inside the requested bound.
    partition_config.quantile_epsilon = options.engine.quantile_epsilon / 2.0;
  }

  std::vector<StreamEngine> engines;
  engines.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    engines.emplace_back(partition_config);
    if (options.geo != nullptr) {
      engines.back().EnableGeo(options.geo, options.geo_enrich);
    }
  }

  common::ParallelRunner runner(std::min(threads, partitions));
  for (std::size_t p = 0; p < partitions; ++p) {
    runner.Submit([&attacks, &engines, p, partitions] {
      const std::size_t begin = p * attacks.size() / partitions;
      const std::size_t end = (p + 1) * attacks.size() / partitions;
      StreamEngine& engine = engines[p];
      for (std::size_t i = begin; i < end; ++i) engine.Push(attacks[i]);
    });
  }
  runner.Wait();

  // Fold in time order; each seam contributes its boundary interval.
  StreamEngine merged = std::move(engines.front());
  for (std::size_t p = 1; p < partitions; ++p) {
    merged.Merge(engines[p], MergeOptions{.stitch_boundary_interval = true});
  }
  merged.Finish();
  return merged;
}

}  // namespace ddos::stream
