#include "stream/sharded.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/strings.h"
#include "stream/sketch.h"

namespace ddos::stream {

namespace {

// Workers pop up to this many tasks per mutex hold: long enough to
// amortize the lock, short enough that a snapshot barrier never waits on
// more than one small batch.
constexpr std::size_t kWorkerBatch = 256;

// Bounded exponential backoff shared by the producer (ring full) and the
// workers (ring empty): yield for the first kBackoffYields attempts - the
// stall is usually one in-flight batch - then sleep, doubling from 1 us to
// kBackoffMaxSleep so a long stall costs microwatts instead of a spinning
// core, while the cap keeps wakeup latency bounded at ~1 ms.
constexpr std::uint32_t kBackoffYields = 64;
constexpr std::chrono::microseconds kBackoffMinSleep{1};
constexpr std::chrono::microseconds kBackoffMaxSleep{1000};

// One backoff step for `attempt` (0-based). Returns true when it slept
// (as opposed to yielding), so callers can count sleeps separately.
inline bool BackoffStep(std::uint32_t attempt) {
  if (attempt < kBackoffYields) {
    std::this_thread::yield();
    return false;
  }
  const std::uint32_t exp =
      std::min<std::uint32_t>(attempt - kBackoffYields, 10);  // 2^10 = 1024 us
  const auto sleep = std::min(kBackoffMaxSleep, kBackoffMinSleep * (1u << exp));
  std::this_thread::sleep_for(sleep);
  return true;
}

// Sampling mask for worker batch spans: tracing every 256-record batch of a
// multi-million-record feed would exhaust the bounded ring in seconds, and
// 1-in-16 still shows the duty cycle clearly in the timeline.
constexpr std::uint64_t kBatchSpanSampleMask = 15;

}  // namespace

ShardedStreamEngine::ShardedStreamEngine(
    const ShardedStreamEngineConfig& config)
    : config_(config), worker_config_(config.engine) {
  const std::size_t n = std::max<std::size_t>(1, config.shards);
  // Half epsilon per shard so the merged sketch honors the requested rank
  // error (merging can double the per-sketch bound; stream/sketch.h).
  if (n > 1) worker_config_.quantile_epsilon = config.engine.quantile_epsilon / 2.0;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        std::max<std::size_t>(2, config.queue_capacity), worker_config_));
    // Geo arms before AttachMetrics below so the enricher's counters
    // resolve together with the engine's.
    if (config.geo != nullptr) {
      shards_.back()->engine.EnableGeo(config.geo, config.geo_enrich);
    }
  }
  trace_ = config.trace;
  if (config.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config.metrics;
    // Same series names as AttackCsvReader: a dashboard watching ingest
    // throughput must not care which engine is behind the feed.
    obs_ingest_records_ = reg.GetCounter("ddoscope_ingest_records_total",
                                         "Valid attack records parsed");
    obs_ingest_bytes_ = reg.GetCounter(
        "ddoscope_ingest_bytes_total",
        "Raw feed bytes consumed (incl. newlines)");
    for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
      const auto kind = static_cast<data::IngestErrorKind>(k);
      obs_ingest_errors_[static_cast<std::size_t>(k)] = reg.GetCounter(
          "ddoscope_ingest_errors_total", "Rejected rows by IngestErrorKind",
          {{"kind", std::string(data::IngestErrorKindName(kind))}});
    }
    obs_merge_seconds_ = reg.GetHistogram(
        "ddoscope_sharded_merge_seconds",
        "Latency of folding all shard engines into one merged view",
        obs::ExponentialBounds(1e-5, 4.0, 12));
    obs_checkpoint_seconds_ = reg.GetHistogram(
        "ddoscope_sharded_checkpoint_seconds",
        "Latency of a sharded checkpoint (barrier + copy + serialize)",
        obs::ExponentialBounds(1e-4, 4.0, 12));
    for (std::size_t i = 0; i < n; ++i) {
      Shard& shard = *shards_[i];
      const obs::Labels labels{{"shard", std::to_string(i)}};
      shard.engine.AttachMetrics(config.metrics, std::to_string(i));
      shard.obs_push_retries = reg.GetCounter(
          "ddoscope_sharded_push_retries_total",
          "Failed ring TryPush attempts (ring full, producer retried)",
          labels);
      shard.obs_backpressure_sleeps = reg.GetCounter(
          "ddoscope_sharded_backpressure_sleeps_total",
          "Producer backoff sleeps while the shard ring stayed full", labels);
      shard.obs_idle_sleeps = reg.GetCounter(
          "ddoscope_sharded_worker_idle_sleeps_total",
          "Worker backoff sleeps while its ring stayed empty", labels);
      shard.obs_queue_highwater = reg.GetGauge(
          "ddoscope_sharded_queue_highwater_slots",
          "Most occupied ring slots the producer has observed", labels);
      reg.GetGauge("ddoscope_sharded_queue_capacity_slots",
                   "Ring capacity in slots", labels)
          ->Set(static_cast<std::int64_t>(shard.queue.capacity()));
    }
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerMain(s); });
  }
}

ShardedStreamEngine::~ShardedStreamEngine() {
  for (auto& shard : shards_) {
    shard->stop.store(true, std::memory_order_release);
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardedStreamEngine::WorkerMain(Shard* shard) {
  Task task;
  std::uint64_t batches = 0;
  std::uint32_t idle_attempts = 0;
  for (;;) {
    // Chaos park: pretend this worker wedged. Spin-sleeps (rather than a
    // condvar) so un-stalling needs no handshake and stop still wins.
    while (shard->stall.load(std::memory_order_acquire) &&
           !shard->stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    bool did_work = false;
    std::uint64_t applied = 0;
    {
      // Sampled span so the trace shows the worker duty cycle without
      // flooding the bounded ring on every 256-record batch.
      obs::SpanTimer span(
          (batches++ & kBatchSpanSampleMask) == 0 ? trace_ : nullptr,
          "apply_batch", "shard_worker");
      std::lock_guard<std::mutex> lock(shard->mutex);
      // Pop AND apply under the mutex: once the router sees the queue
      // empty and takes this mutex, the engine reflects every routed task.
      for (std::size_t i = 0; i < kWorkerBatch; ++i) {
        if (!shard->queue.TryPop(&task)) break;
        did_work = true;
        ++applied;
        if (task.kind == Task::Kind::kRecord) {
          shard->engine.PushRouted(task.record, task.has_gap, task.gap);
        } else if (task.kind == Task::Kind::kCollab) {
          shard->engine.PushCollab(task.obs);
        } else {
          ApplySpanTask(shard, task);
        }
      }
    }
    if (applied > 0) {
      shard->processed.fetch_add(applied, std::memory_order_relaxed);
    }
    if (!did_work) {
      if (shard->stop.load(std::memory_order_acquire) &&
          shard->queue.Empty()) {
        return;
      }
      if (BackoffStep(idle_attempts++)) {
        obs::MaybeAdd(shard->obs_idle_sleeps);
      }
    } else {
      idle_attempts = 0;
    }
  }
}

void ShardedStreamEngine::Enqueue(std::size_t shard_index, Task&& task) {
  Shard& shard = *shards_[shard_index];
  common::SpscQueue<Task>& queue = shard.queue;
  // High-water before the push: SizeApprox is two relaxed-ish loads on
  // cursors this thread already touches, and UpdateMax is RMW-free once the
  // mark is established.
  obs::MaybeUpdateMax(shard.obs_queue_highwater,
                      static_cast<std::int64_t>(queue.SizeApprox() + 1));
  if (queue.TryPush(std::move(task))) return;
  // Backpressure: ring full, consumer behind. Yield first, then sleep with
  // exponential backoff - and make the stall visible, because an invisible
  // spin here is indistinguishable from useful router work in `top`.
  std::uint32_t attempts = 0;
  do {
    obs::MaybeAdd(shard.obs_push_retries);
    if (BackoffStep(attempts++)) {
      obs::MaybeAdd(shard.obs_backpressure_sleeps);
    }
  } while (!queue.TryPush(std::move(task)));
}

void ShardedStreamEngine::Push(const data::AttackRecord& attack) {
  if (finished_) {
    throw std::logic_error("ShardedStreamEngine: Push after Finish");
  }
  Task record_task;
  record_task.kind = Task::Kind::kRecord;
  record_task.has_gap = attacks_ > 0;
  if (record_task.has_gap) {
    // The global inter-attack gap, computed here where the full feed order
    // is visible; workers only see their own botnets.
    record_task.gap = std::max<double>(
        0.0, static_cast<double>(attack.start_time - last_start_));
  } else {
    first_start_ = attack.start_time;
  }
  last_start_ = std::max(last_start_, attack.start_time);
  ++attacks_;

  Task collab_task;
  collab_task.kind = Task::Kind::kCollab;
  collab_task.obs =
      CollabObservation{attack.target_ip.bits(), attack.start_time,
                        attack.duration_seconds(), attack.family,
                        attack.botnet_id};

  const std::size_t n = shards_.size();
  const std::size_t record_shard =
      static_cast<std::size_t>(MixHash64(attack.botnet_id) % n);
  const std::size_t collab_shard = static_cast<std::size_t>(
      MixHash64(collab_task.obs.target_bits) % n);
  record_task.record = attack;
  Enqueue(record_shard, std::move(record_task));
  Enqueue(collab_shard, std::move(collab_task));
}

void ShardedStreamEngine::ApplySpanTask(Shard* shard, const Task& task) {
  // Worker thread, shard->mutex held. The full 14-column parse runs here,
  // inside the shard - the whole point of span routing.
  data::AttackRecord rec;
  data::IngestError err;
  if (data::TryParseAttackLine(task.span, &rec, &err)) {
    if (task.kind != Task::Kind::kLineCollab) {
      shard->engine.PushRouted(rec, task.has_gap, task.gap);
      obs::MaybeAdd(obs_ingest_records_);
    }
    if (task.kind != Task::Kind::kLineRecord) {
      shard->engine.PushCollab(CollabObservation{
          rec.target_ip.bits(), rec.start_time, rec.duration_seconds(),
          rec.family, rec.botnet_id});
    }
    return;
  }
  if (task.kind == Task::Kind::kLineCollab) {
    // The record shard parses the same span and reports the identical
    // failure; reporting here too would double-count it.
    return;
  }
  // Worker-detected rejection (family, protocol, asn, coordinates,
  // magnitude - everything the router's pre-scan does not check). Same
  // torn-write reclassification as the reader, original line attribution.
  if (!task.saw_newline) {
    err.kind = data::IngestErrorKind::kTruncatedLine;
    err.detail = "stream ended mid-record (" + err.detail + ")";
  }
  err.line_no = static_cast<std::size_t>(task.line_no);
  if (config_.parse.policy == data::ParsePolicy::kQuarantine) {
    err.raw_line = std::string(task.span);
  }
  shard->report.Add(err.kind);
  obs::MaybeAdd(obs_ingest_errors_[static_cast<std::size_t>(err.kind)]);
  error_total_.fetch_add(1, std::memory_order_relaxed);
  shard->errors.push_back(std::move(err));
  if (config_.parse.policy == data::ParsePolicy::kStrict) {
    // Workers cannot throw across the ring; flag it and let the router
    // surface the earliest buffered line (deterministic across counts).
    worker_fatal_.store(true, std::memory_order_release);
  }
}

void ShardedStreamEngine::RecordRouterError(data::IngestError&& err) {
  router_report_.Add(err.kind);
  obs::MaybeAdd(obs_ingest_errors_[static_cast<std::size_t>(err.kind)]);
  error_total_.fetch_add(1, std::memory_order_relaxed);
  router_errors_.push_back(std::move(err));
  if (config_.parse.policy == data::ParsePolicy::kStrict) {
    const data::IngestError& e = router_errors_.back();
    throw std::runtime_error(StrFormat(
        "CSV: %s: %s at line %zu",
        std::string(data::IngestErrorKindName(e.kind)).c_str(),
        e.detail.c_str(), e.line_no));
  }
}

void ShardedStreamEngine::ThrowWorkerFatal() {
  DrainBarrier();
  data::IngestError first;
  bool have = false;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const data::IngestError& e : shard->errors) {
      if (!have || e.line_no < first.line_no) {
        first = e;
        have = true;
      }
    }
  }
  if (!have) {
    throw std::runtime_error("CSV: worker rejected a row (detail lost)");
  }
  throw std::runtime_error(StrFormat(
      "CSV: %s: %s at line %zu",
      std::string(data::IngestErrorKindName(first.kind)).c_str(),
      first.detail.c_str(), first.line_no));
}

void ShardedStreamEngine::PushLine(std::string_view line, std::size_t line_no,
                                   bool saw_newline) {
  if (finished_) {
    throw std::logic_error("ShardedStreamEngine: PushLine after Finish");
  }
  if (worker_fatal_.load(std::memory_order_acquire)) ThrowWorkerFatal();
  obs::MaybeAdd(obs_ingest_bytes_, line.size() + (saw_newline ? 1 : 0));
  if (Trim(line).empty()) return;

  data::IngestError err;
  err.line_no = line_no;
  if (line.size() > config_.parse.max_line_bytes) {
    err.kind = data::IngestErrorKind::kTruncatedLine;
    err.detail = StrFormat("line of %zu bytes exceeds the %zu-byte cap",
                           line.size(), config_.parse.max_line_bytes);
    if (config_.parse.policy == data::ParsePolicy::kQuarantine) {
      err.raw_line = std::string(line);
    }
    RecordRouterError(std::move(err));
    return;
  }

  data::AttackLinePreScan scan;
  bool ok = prescan_.Scan(line, &scan, &err);
  // Reclassify a torn tail before the duplicate check, exactly as the
  // reader does: a parse failure on an unterminated final line is reported
  // as the torn write it is.
  if (!ok && !saw_newline) {
    err.kind = data::IngestErrorKind::kTruncatedLine;
    err.detail = "stream ended mid-record (" + err.detail + ")";
  }
  if (ok && config_.parse.detect_duplicate_ids &&
      !seen_ids_.insert(scan.ddos_id).second) {
    ok = false;
    err.kind = data::IngestErrorKind::kDuplicateId;
    err.detail = StrFormat("ddos_id %llu already ingested",
                           static_cast<unsigned long long>(scan.ddos_id));
  }
  if (!ok) {
    err.line_no = line_no;
    if (config_.parse.policy == data::ParsePolicy::kQuarantine) {
      err.raw_line = std::string(line);
    }
    RecordRouterError(std::move(err));
    return;
  }

  // Global gap chain off the pre-scanned start time - byte-for-byte the
  // arithmetic Push() does with a parsed record.
  Task task;
  task.has_gap = attacks_ > 0;
  const TimePoint start(scan.start_s);
  if (task.has_gap) {
    task.gap =
        std::max<double>(0.0, static_cast<double>(start - last_start_));
  } else {
    first_start_ = start;
  }
  last_start_ = std::max(last_start_, start);
  ++attacks_;

  task.saw_newline = saw_newline;
  task.span = line;
  task.line_no = line_no;
  const std::size_t n = shards_.size();
  const std::size_t record_shard =
      static_cast<std::size_t>(MixHash64(scan.botnet_id) % n);
  const std::size_t collab_shard =
      static_cast<std::size_t>(MixHash64(scan.target_bits) % n);
  if (record_shard == collab_shard) {
    task.kind = Task::Kind::kLineBoth;
    Enqueue(record_shard, std::move(task));
  } else {
    Task collab = task;
    task.kind = Task::Kind::kLineRecord;
    collab.kind = Task::Kind::kLineCollab;
    Enqueue(record_shard, std::move(task));
    Enqueue(collab_shard, std::move(collab));
  }
}

std::uint64_t ShardedStreamEngine::ParsedRecords() {
  if (finished_) return merged_->attacks_seen();
  DrainBarrier();
  std::uint64_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->engine.attacks_seen();
  }
  return total;
}

data::IngestErrorReport ShardedStreamEngine::ErrorReport() {
  if (!finished_) DrainBarrier();
  data::IngestErrorReport report = router_report_;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
      report.counts[static_cast<std::size_t>(k)] +=
          shard->report.counts[static_cast<std::size_t>(k)];
    }
  }
  return report;
}

std::vector<data::IngestError> ShardedStreamEngine::DrainErrors() {
  if (!finished_) DrainBarrier();
  std::vector<data::IngestError> out = std::move(router_errors_);
  router_errors_.clear();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.insert(out.end(), std::make_move_iterator(shard->errors.begin()),
               std::make_move_iterator(shard->errors.end()));
    shard->errors.clear();
  }
  // One rejection per line, so line order is a total order; sorting makes
  // the merged output independent of shard count and drain timing.
  std::sort(out.begin(), out.end(),
            [](const data::IngestError& a, const data::IngestError& b) {
              return a.line_no < b.line_no;
            });
  return out;
}

void ShardedStreamEngine::SeedErrors(const data::IngestErrorReport& errors) {
  for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    router_report_.counts[idx] += errors.counts[idx];
    obs::MaybeAdd(obs_ingest_errors_[idx], errors.counts[idx]);
    error_total_.fetch_add(errors.counts[idx], std::memory_order_relaxed);
  }
}

void ShardedStreamEngine::DrainBarrier() {
  DDOS_TRACE_SPAN(trace_, "drain_barrier", "sharded");
  for (auto& shard : shards_) {
    while (!shard->queue.Empty()) std::this_thread::yield();
    {
      std::lock_guard<std::mutex> lock(shard->mutex);  // flush in-flight batch
      // Barriers are the natural cadence for the per-shard state gauges:
      // frequent enough to be live, far off the per-record path.
      shard->engine.UpdateObsGauges();
    }
  }
}

StreamEngine ShardedStreamEngine::MergeShards() {
  obs::SpanTimer span(trace_, obs_merge_seconds_, "merge_shards", "sharded");
  StreamEngine merged(worker_config_);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.Merge(shard->engine);
  }
  return merged;
}

void ShardedStreamEngine::Finish() {
  if (finished_) return;
  DDOS_TRACE_SPAN(trace_, "finish", "sharded");
  DrainBarrier();
  // A kStrict worker rejection flagged since the last PushLine surfaces
  // here rather than being silently folded into the merge.
  if (worker_fatal_.load(std::memory_order_acquire)) ThrowWorkerFatal();
  for (auto& shard : shards_) {
    shard->stop.store(true, std::memory_order_release);
  }
  for (auto& shard : shards_) shard->worker.join();
  merged_ = std::make_unique<StreamEngine>(MergeShards());
  merged_->Finish();
  finished_ = true;
}

const StreamEngine& ShardedStreamEngine::merged() const {
  if (!finished_) {
    throw std::logic_error("ShardedStreamEngine: merged() before Finish");
  }
  return *merged_;
}

StreamSnapshot ShardedStreamEngine::Snapshot(std::size_t top_k) {
  if (finished_) return merged_->Snapshot(top_k);
  DDOS_TRACE_SPAN(trace_, "snapshot", "sharded");
  DrainBarrier();
  return MergeShards().Snapshot(top_k);
}

void ShardedStreamEngine::SaveCheckpoint(std::ostream& out,
                                         const CheckpointMeta& meta) {
  obs::SpanTimer span(trace_, obs_checkpoint_seconds_, "checkpoint",
                      "sharded");
  ShardedCheckpointState state;
  state.meta = meta;
  state.router_attacks = attacks_;
  state.router_first_start_s = first_start_.seconds();
  state.router_last_start_s = last_start_.seconds();
  DrainBarrier();
  state.engines.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    state.engines.push_back(shard->engine);
  }
  WriteShardedCheckpoint(out, state);
}

void ShardedStreamEngine::SaveCheckpoint(const std::string& path,
                                         const CheckpointMeta& meta) {
  obs::SpanTimer span(trace_, obs_checkpoint_seconds_, "checkpoint",
                      "sharded");
  ShardedCheckpointState state;
  state.meta = meta;
  state.router_attacks = attacks_;
  state.router_first_start_s = first_start_.seconds();
  state.router_last_start_s = last_start_.seconds();
  DrainBarrier();
  state.engines.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    state.engines.push_back(shard->engine);
  }
  WriteShardedCheckpoint(path, state);
}

void ShardedStreamEngine::RestoreFrom(const ShardedCheckpointState& state) {
  if (attacks_ != 0) {
    throw std::logic_error(
        "ShardedStreamEngine: RestoreFrom on a non-fresh engine");
  }
  attacks_ = state.router_attacks;
  first_start_ = TimePoint(state.router_first_start_s);
  last_start_ = TimePoint(state.router_last_start_s);
  // Round-robin: with an unchanged shard count every section returns to
  // its own shard (hash routing is stable), so resume is exact; a changed
  // count still merges correctly, it just re-partitions pending
  // collaboration targets at the next Finish. The first section landing on
  // a shard is assigned rather than merged - a merge into an empty engine
  // may recompress GK tuples, and assignment keeps a same-count resume
  // bit-identical to the uninterrupted run.
  std::vector<bool> seeded(shards_.size(), false);
  for (std::size_t i = 0; i < state.engines.size(); ++i) {
    const std::size_t dest = i % shards_.size();
    Shard& shard = *shards_[dest];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!seeded[dest]) {
      shard.engine = state.engines[i];
      seeded[dest] = true;
    } else {
      shard.engine.Merge(state.engines[i]);
    }
  }
  // Checkpointed engines carry neither obs handles nor enrichment state
  // (the format predates both and geo is live-only by contract): re-arm
  // what the constructor had armed, with geo tallies restarting from the
  // resume point.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!seeded[i]) continue;
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (config_.geo != nullptr) {
      shard.engine.EnableGeo(config_.geo, config_.geo_enrich);
    }
    shard.engine.AttachMetrics(config_.metrics, std::to_string(i));
  }
}

std::size_t ShardedStreamEngine::ApproxMemoryBytes() {
  std::size_t bytes = sizeof(*this);
  for (auto& shard : shards_) {
    bytes += shard->queue.ApproxMemoryBytes();
    std::lock_guard<std::mutex> lock(shard->mutex);
    bytes += shard->engine.ApproxMemoryBytes();
  }
  if (merged_ != nullptr) bytes += merged_->ApproxMemoryBytes();
  return bytes;
}

std::vector<std::size_t> ShardedStreamEngine::QueueDepths() const {
  std::vector<std::size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) depths.push_back(shard->queue.SizeApprox());
  return depths;
}

std::vector<std::uint64_t> ShardedStreamEngine::ProcessedCounts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    counts.push_back(shard->processed.load(std::memory_order_relaxed));
  }
  return counts;
}

void ShardedStreamEngine::ChaosStallShard(std::size_t index, bool stalled) {
  if (index >= shards_.size()) return;
  shards_[index]->stall.store(stalled, std::memory_order_release);
}

}  // namespace ddos::stream
