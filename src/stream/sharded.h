// ShardedStreamEngine: parallel ingest across N worker StreamEngines.
//
// One router thread (the caller of Push) partitions the attack feed across
// N workers, each owning a private StreamEngine fed through a bounded SPSC
// queue; Snapshot() and Finish() fold the workers back together through
// StreamEngine::Merge. Two routing keys keep the merged result faithful to
// a single engine over the same feed:
//
//  * Records shard by hash(botnet_id): per-botnet state (distinct counts,
//    family tallies) stays local, and load spreads across the paper's
//    hundreds of botnets. The router computes each record's inter-attack
//    gap against the GLOBAL previous start before routing, so interval
//    statistics - counts, concurrency bands, Welford moments - merge to
//    bit-identical values; only sketch-backed quantiles carry the merged
//    (still bounded) rank error.
//  * Collaboration observations shard by hash(target): collaborations are
//    per-target groups spanning botnets, so target routing keeps every
//    group's participants on one shard, in global chronological order -
//    the cross-shard stitch reduces to a union of disjoint pending tables
//    and the final collaboration tallies are exact.
//
// Per-shard quantile sketches run at half the requested epsilon: a GK merge
// of k sketches is bounded by the max per-sketch error times two in the
// worst interleaving (stream/sketch.h), so halving keeps the merged view
// within the configured contract.
//
// Threading model: the router is the only producer; workers pop and apply
// under a per-shard mutex. A barrier (queue drained + mutex acquired) makes
// Snapshot/checkpoint safe mid-stream without stopping ingestion for longer
// than the in-flight batch.
#ifndef DDOSCOPE_STREAM_SHARDED_H_
#define DDOSCOPE_STREAM_SHARDED_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

namespace ddos::stream {

struct ShardedStreamEngineConfig {
  std::size_t shards = 2;          // worker engines (clamped to >= 1)
  std::size_t queue_capacity = 4096;  // per-shard ring slots (rounded to 2^k)
  StreamEngineConfig engine;       // the requested accuracy contract
  // Optional observability sinks (owned by the caller, must outlive the
  // engine). With `metrics` set, every shard publishes ddoscope_stream_*
  // (via StreamEngine::AttachMetrics) and ddoscope_sharded_* series:
  // push-retry/backpressure counts, ring occupancy high-water marks, and
  // merge/checkpoint latency histograms. With `trace` set, pipeline stages
  // (sampled worker batches, barriers, merges, checkpoints) record
  // DDOS_TRACE_SPAN events. Null pointers cost one branch per site.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

class ShardedStreamEngine {
 public:
  explicit ShardedStreamEngine(const ShardedStreamEngineConfig& config = {});
  ~ShardedStreamEngine();

  ShardedStreamEngine(const ShardedStreamEngine&) = delete;
  ShardedStreamEngine& operator=(const ShardedStreamEngine&) = delete;

  // Routes one attack record. When the destination ring is full the
  // producer backs off in bounded stages - a short yield burst, then
  // exponentially growing sleeps capped at 1 ms - so a stalled consumer
  // does not pin a core, and every retry is counted in the per-shard
  // push-retry metrics. Caller thread only - single producer.
  void Push(const data::AttackRecord& attack);

  // End of stream: drains the queues, stops the workers, and folds every
  // shard into the merged engine (including StreamEngine::Finish, which
  // flushes pending collaboration groups). Push must not be called after.
  void Finish();

  // Live view: barrier + merge a copy of every shard. Matches what a
  // single engine's Snapshot() would show mid-stream, except that
  // collaboration events a single engine's periodic sweep would already
  // have counted may still be pending (they are identical after Finish).
  StreamSnapshot Snapshot(std::size_t top_k = 10);

  // The folded engine; valid only after Finish().
  const StreamEngine& merged() const;

  // Checkpointing (version-2 sharded format, stream/checkpoint.h). Safe
  // mid-stream: takes the same barrier as Snapshot.
  void SaveCheckpoint(std::ostream& out, const CheckpointMeta& meta);
  void SaveCheckpoint(const std::string& path, const CheckpointMeta& meta);

  // Seeds a fresh (never-pushed) sharded engine from a checkpoint. The
  // state's sections are distributed round-robin, so a checkpoint written
  // with S shards restores into any shard count; with the same count each
  // section lands back on its own shard and resumed results are exactly
  // those of an uninterrupted run (different counts re-partition pending
  // collaboration targets, which can stitch group boundaries differently).
  void RestoreFrom(const ShardedCheckpointState& state);

  std::uint64_t attacks_seen() const { return attacks_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t ApproxMemoryBytes();

  // Instantaneous per-shard ring occupancy. Approximate (relaxed cursor
  // reads, no barrier) and safe from any thread - the ddoscoped /status
  // endpoint polls this without stalling ingest.
  std::vector<std::size_t> QueueDepths() const;

  // Cumulative tasks applied per shard. Same approximate/any-thread
  // contract as QueueDepths; the daemon's watchdog pairs the two to tell
  // a stalled shard (depth > 0, processed frozen) from an idle one.
  std::vector<std::uint64_t> ProcessedCounts() const;

  // Test/chaos hook: parks (or unparks) a shard's worker before its next
  // batch, simulating a wedged consumer. A stalled shard stops draining
  // its ring but keeps honoring stop/destruction. Not for production use.
  void ChaosStallShard(std::size_t index, bool stalled);

 private:
  struct Task {
    enum class Kind : std::uint8_t { kRecord, kCollab };
    Kind kind = Kind::kRecord;
    bool has_gap = false;
    double gap = 0.0;
    data::AttackRecord record;  // kRecord
    CollabObservation obs;      // kCollab
  };

  struct Shard {
    explicit Shard(std::size_t queue_capacity,
                   const StreamEngineConfig& engine_config)
        : queue(queue_capacity), engine(engine_config) {}

    common::SpscQueue<Task> queue;
    std::mutex mutex;        // guards engine
    StreamEngine engine;
    std::atomic<bool> stop{false};
    std::atomic<bool> stall{false};           // ChaosStallShard park flag
    std::atomic<std::uint64_t> processed{0};  // tasks applied (watchdog)
    std::thread worker;

    // Resolved obs handles (null when the config carries no registry).
    obs::Counter* obs_push_retries = nullptr;       // failed TryPush attempts
    obs::Counter* obs_backpressure_sleeps = nullptr;  // producer slept
    obs::Counter* obs_idle_sleeps = nullptr;        // worker slept while idle
    obs::Gauge* obs_queue_highwater = nullptr;      // max occupied slots seen
  };

  void WorkerMain(Shard* shard);
  void Enqueue(std::size_t shard_index, Task&& task);
  // Router-side barrier: every queue observed empty and every shard mutex
  // acquired once => all routed work has been applied. Correct because the
  // router (the sole producer) is the thread calling it.
  void DrainBarrier();
  StreamEngine MergeShards();

  ShardedStreamEngineConfig config_;
  StreamEngineConfig worker_config_;  // config_.engine at epsilon / 2
  std::vector<std::unique_ptr<Shard>> shards_;

  // Router state (caller thread only).
  std::uint64_t attacks_ = 0;
  TimePoint first_start_;
  TimePoint last_start_;

  std::unique_ptr<StreamEngine> merged_;  // set by Finish()
  bool finished_ = false;

  // Whole-engine obs handles (null when unattached).
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* obs_merge_seconds_ = nullptr;
  obs::Histogram* obs_checkpoint_seconds_ = nullptr;
};

}  // namespace ddos::stream

#endif  // DDOSCOPE_STREAM_SHARDED_H_
