// ShardedStreamEngine: parallel ingest across N worker StreamEngines.
//
// One router thread (the caller of Push) partitions the attack feed across
// N workers, each owning a private StreamEngine fed through a bounded SPSC
// queue; Snapshot() and Finish() fold the workers back together through
// StreamEngine::Merge. Two routing keys keep the merged result faithful to
// a single engine over the same feed:
//
//  * Records shard by hash(botnet_id): per-botnet state (distinct counts,
//    family tallies) stays local, and load spreads across the paper's
//    hundreds of botnets. The router computes each record's inter-attack
//    gap against the GLOBAL previous start before routing, so interval
//    statistics - counts, concurrency bands, Welford moments - merge to
//    bit-identical values; only sketch-backed quantiles carry the merged
//    (still bounded) rank error.
//  * Collaboration observations shard by hash(target): collaborations are
//    per-target groups spanning botnets, so target routing keeps every
//    group's participants on one shard, in global chronological order -
//    the cross-shard stitch reduces to a union of disjoint pending tables
//    and the final collaboration tallies are exact.
//
// Per-shard quantile sketches run at half the requested epsilon: a GK merge
// of k sketches is bounded by the max per-sketch error times two in the
// worst interleaving (stream/sketch.h), so halving keeps the merged view
// within the configured contract.
//
// Parse-in-shard ingest (PushLine): for file feeds the router does not
// parse rows at all. It byte-scans each raw line span just enough to
// route it - botnet_id (record shard), target_ip (collab shard), ddos_id
// (duplicate detection) and the two timestamps (the global gap chain) via
// data/linescan.h - and ships the span itself over the rings; workers run
// the full 14-column parse inside the shard. This is what makes sharding
// pay: the serial router does O(bytes) work per row while the O(fields)
// parse runs N-wide. Rejected rows keep exact, deterministic line
// attribution: router-detected rejections (structure, ids, timestamps,
// duplicates) are tallied at the router, worker-detected ones (family,
// protocol, asn, coordinates, magnitude) are buffered per shard with
// their original line numbers and merged in line order at the next
// barrier - so error_report()/quarantine output is identical for every
// shard count. Span lifetime: the bytes must stay addressable until the
// next barrier (mmap the feed, common/mmapio.h, or keep the buffer
// alive); Push() record routing remains for non-stable sources
// (stdin, the netd line protocol).
//
// Threading model: the router is the only producer; workers pop and apply
// under a per-shard mutex. A barrier (queue drained + mutex acquired) makes
// Snapshot/checkpoint safe mid-stream without stopping ingestion for longer
// than the in-flight batch.
#ifndef DDOSCOPE_STREAM_SHARDED_H_
#define DDOSCOPE_STREAM_SHARDED_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/spsc_queue.h"
#include "data/csv.h"
#include "data/ingest_error.h"
#include "data/linescan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"

namespace ddos::stream {

struct ShardedStreamEngineConfig {
  std::size_t shards = 2;          // worker engines (clamped to >= 1)
  std::size_t queue_capacity = 4096;  // per-shard ring slots (rounded to 2^k)
  StreamEngineConfig engine;       // the requested accuracy contract
  // Optional observability sinks (owned by the caller, must outlive the
  // engine). With `metrics` set, every shard publishes ddoscope_stream_*
  // (via StreamEngine::AttachMetrics) and ddoscope_sharded_* series:
  // push-retry/backpressure counts, ring occupancy high-water marks, and
  // merge/checkpoint latency histograms. With `trace` set, pipeline stages
  // (sampled worker batches, barriers, merges, checkpoints) record
  // DDOS_TRACE_SPAN events. Null pointers cost one branch per site.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  // Optional live geo enrichment: with `geo` set (caller-owned, must
  // outlive the engine; a compiled read-only mapping is safely shared by
  // every shard), each worker engine tags records inside the shard and the
  // merged snapshot carries the folded GeoEnrichSnapshot. Enrichment state
  // is never checkpointed - a restored run re-derives it from the resumed
  // feed (stream/geo_enrich.h).
  const geo::GeoMmdb* geo = nullptr;
  GeoEnrichConfig geo_enrich;
  // Error policy for the span-ingest path (PushLine): policy, the line
  // length cap, and duplicate detection follow AttackCsvReader's exact
  // semantics. The quarantine pointer is ignored here - rejected rows are
  // buffered with line attribution and handed back through DrainErrors()
  // so the caller can write them in deterministic line order.
  data::ParseOptions parse;
};

class ShardedStreamEngine {
 public:
  explicit ShardedStreamEngine(const ShardedStreamEngineConfig& config = {});
  ~ShardedStreamEngine();

  ShardedStreamEngine(const ShardedStreamEngine&) = delete;
  ShardedStreamEngine& operator=(const ShardedStreamEngine&) = delete;

  // Routes one attack record. When the destination ring is full the
  // producer backs off in bounded stages - a short yield burst, then
  // exponentially growing sleeps capped at 1 ms - so a stalled consumer
  // does not pin a core, and every retry is counted in the per-shard
  // push-retry metrics. Caller thread only - single producer.
  void Push(const data::AttackRecord& attack);

  // Routes one raw CSV line span (parse-in-shard ingest; see the header
  // comment). `line_no` is the 1-based input line; `saw_newline` false
  // marks an unterminated final line (torn-write reclassification, same
  // as AttackCsvReader). Blank lines are counted and dropped; the caller
  // skips the header line itself (LineSpanScanner starts at line 1).
  // Router-detected rejections under ParsePolicy::kStrict throw here with
  // the reader's exact message; worker-detected ones surface on the next
  // PushLine or at Finish(). Caller thread only - single producer.
  void PushLine(std::string_view line, std::size_t line_no,
                bool saw_newline = true);

  // End of stream: drains the queues, stops the workers, and folds every
  // shard into the merged engine (including StreamEngine::Finish, which
  // flushes pending collaboration groups). Push must not be called after.
  void Finish();

  // Live view: barrier + merge a copy of every shard. Matches what a
  // single engine's Snapshot() would show mid-stream, except that
  // collaboration events a single engine's periodic sweep would already
  // have counted may still be pending (they are identical after Finish).
  StreamSnapshot Snapshot(std::size_t top_k = 10);

  // The folded engine; valid only after Finish().
  const StreamEngine& merged() const;

  // Checkpointing (version-2 sharded format, stream/checkpoint.h). Safe
  // mid-stream: takes the same barrier as Snapshot.
  void SaveCheckpoint(std::ostream& out, const CheckpointMeta& meta);
  void SaveCheckpoint(const std::string& path, const CheckpointMeta& meta);

  // Seeds a fresh (never-pushed) sharded engine from a checkpoint. The
  // state's sections are distributed round-robin, so a checkpoint written
  // with S shards restores into any shard count; with the same count each
  // section lands back on its own shard and resumed results are exactly
  // those of an uninterrupted run (different counts re-partition pending
  // collaboration targets, which can stitch group boundaries differently).
  void RestoreFrom(const ShardedCheckpointState& state);

  std::uint64_t attacks_seen() const { return attacks_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t ApproxMemoryBytes();

  // --- span-ingest error accessors (PushLine path) ---
  //
  // Valid records applied across all shards. Takes a barrier, so every
  // routed line has been parsed when it returns. Router thread only.
  std::uint64_t ParsedRecords();
  // Merged per-kind tallies: router-side rejections plus every shard's.
  // Takes a barrier. Router thread only.
  data::IngestErrorReport ErrorReport();
  // Moves out every buffered rejection (router- and worker-detected),
  // sorted by line number - byte-identical output for any shard count.
  // raw_line is captured only under ParsePolicy::kQuarantine. Takes a
  // barrier; tallies (ErrorReport) are unaffected. Router thread only.
  std::vector<data::IngestError> DrainErrors();
  // Lock-free running rejection count (relaxed; any thread) - the live
  // stats ticker's view between barriers.
  std::uint64_t ApproxErrorTotal() const {
    return error_total_.load(std::memory_order_relaxed);
  }
  // Folds a checkpointed predecessor's tallies into ErrorReport() and the
  // attached obs counters (resume path; AttackCsvReader::SeedErrors).
  void SeedErrors(const data::IngestErrorReport& errors);

  // Instantaneous per-shard ring occupancy. Approximate (relaxed cursor
  // reads, no barrier) and safe from any thread - the ddoscoped /status
  // endpoint polls this without stalling ingest.
  std::vector<std::size_t> QueueDepths() const;

  // Cumulative tasks applied per shard. Same approximate/any-thread
  // contract as QueueDepths; the daemon's watchdog pairs the two to tell
  // a stalled shard (depth > 0, processed frozen) from an idle one.
  std::vector<std::uint64_t> ProcessedCounts() const;

  // Test/chaos hook: parks (or unparks) a shard's worker before its next
  // batch, simulating a wedged consumer. A stalled shard stops draining
  // its ring but keeps honoring stop/destruction. Not for production use.
  void ChaosStallShard(std::size_t index, bool stalled);

 private:
  struct Task {
    // kRecord/kCollab carry parsed data (Push). kLineRecord/kLineCollab/
    // kLineBoth carry a raw span the worker parses in-shard (PushLine);
    // kLineBoth is the both-keys-hashed-to-one-shard case, parsed once and
    // applied as record and collab observation together.
    enum class Kind : std::uint8_t {
      kRecord,
      kCollab,
      kLineRecord,
      kLineCollab,
      kLineBoth,
    };
    Kind kind = Kind::kRecord;
    bool has_gap = false;
    bool saw_newline = true;    // kLine*: torn-write reclassification
    double gap = 0.0;
    data::AttackRecord record;  // kRecord
    CollabObservation obs;      // kCollab
    std::string_view span;      // kLine*: stable until the next barrier
    std::uint64_t line_no = 0;  // kLine*: original 1-based input line
  };

  struct Shard {
    explicit Shard(std::size_t queue_capacity,
                   const StreamEngineConfig& engine_config)
        : queue(queue_capacity), engine(engine_config) {}

    common::SpscQueue<Task> queue;
    std::mutex mutex;        // guards engine, errors, report
    StreamEngine engine;
    // Span-parse rejections detected by this worker, with original line
    // numbers; merged and sorted across shards at DrainErrors(). The
    // worker appends under `mutex` (it already holds it to apply a
    // batch), so a post-barrier read is race-free.
    std::vector<data::IngestError> errors;
    data::IngestErrorReport report;
    std::atomic<bool> stop{false};
    std::atomic<bool> stall{false};           // ChaosStallShard park flag
    std::atomic<std::uint64_t> processed{0};  // tasks applied (watchdog)
    std::thread worker;

    // Resolved obs handles (null when the config carries no registry).
    obs::Counter* obs_push_retries = nullptr;       // failed TryPush attempts
    obs::Counter* obs_backpressure_sleeps = nullptr;  // producer slept
    obs::Counter* obs_idle_sleeps = nullptr;        // worker slept while idle
    obs::Gauge* obs_queue_highwater = nullptr;      // max occupied slots seen
  };

  void WorkerMain(Shard* shard);
  void ApplySpanTask(Shard* shard, const Task& task);
  void Enqueue(std::size_t shard_index, Task&& task);
  // Router-side rejection bookkeeping for PushLine (tally, buffer, obs,
  // strict throw) - the reader's error path, one line at a time.
  void RecordRouterError(data::IngestError&& err);
  // kStrict + a worker-detected rejection: barrier, collect every buffered
  // error, throw for the earliest line (deterministic across shard counts).
  [[noreturn]] void ThrowWorkerFatal();
  // Router-side barrier: every queue observed empty and every shard mutex
  // acquired once => all routed work has been applied. Correct because the
  // router (the sole producer) is the thread calling it.
  void DrainBarrier();
  StreamEngine MergeShards();

  ShardedStreamEngineConfig config_;
  StreamEngineConfig worker_config_;  // config_.engine at epsilon / 2
  std::vector<std::unique_ptr<Shard>> shards_;

  // Router state (caller thread only).
  std::uint64_t attacks_ = 0;
  TimePoint first_start_;
  TimePoint last_start_;

  // Span-ingest router state (caller thread only unless noted).
  data::AttackLinePreScanner prescan_;
  std::unordered_set<std::uint64_t> seen_ids_;     // dup detection
  std::vector<data::IngestError> router_errors_;   // buffered rejections
  data::IngestErrorReport router_report_;          // router-side tallies
  std::atomic<std::uint64_t> error_total_{0};      // all threads, relaxed
  std::atomic<bool> worker_fatal_{false};          // kStrict worker reject

  std::unique_ptr<StreamEngine> merged_;  // set by Finish()
  bool finished_ = false;

  // Whole-engine obs handles (null when unattached).
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* obs_merge_seconds_ = nullptr;
  obs::Histogram* obs_checkpoint_seconds_ = nullptr;
  // Ingest-counter handles shared with AttackCsvReader's series names; the
  // records/errors cells are bumped from worker threads (striped counters
  // are thread-safe), bytes from the router only.
  obs::Counter* obs_ingest_records_ = nullptr;
  obs::Counter* obs_ingest_bytes_ = nullptr;
  std::array<obs::Counter*, data::kIngestErrorKindCount> obs_ingest_errors_{};
};

}  // namespace ddos::stream

#endif  // DDOSCOPE_STREAM_SHARDED_H_
