// IPv4 addresses, CIDR subnets, and autonomous-system numbers.
//
// The Table-I schema carries bot and target IPs plus the target's ASN. The
// paper treats addresses as opaque identifiers with two structural uses:
// subnet co-location ("all targets were located in the same subnet in
// Russia") and geolocation lookup keys. `IPv4Address` is a 32-bit value type
// and `Subnet` is a prefix match; both are trivially copyable and totally
// ordered so they can serve as map keys.
#ifndef DDOSCOPE_NET_IPV4_H_
#define DDOSCOPE_NET_IPV4_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ddos::net {

// A 32-bit IPv4 address, stored in host order.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t host_order_bits)
      : bits_(host_order_bits) {}

  static constexpr IPv4Address FromOctets(std::uint8_t a, std::uint8_t b,
                                          std::uint8_t c, std::uint8_t d) {
    return IPv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  // "a.b.c.d" dotted-quad; rejects anything else (no shorthand forms).
  static std::optional<IPv4Address> Parse(std::string_view text);

  std::string ToString() const;

  constexpr std::uint32_t bits() const { return bits_; }
  constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  constexpr auto operator<=>(const IPv4Address&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

// An autonomous-system number (strong typedef over uint32).
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }
  std::string ToString() const;  // "AS12345"

  constexpr auto operator<=>(const Asn&) const = default;

 private:
  std::uint32_t value_ = 0;
};

// A CIDR prefix, e.g. 192.0.2.0/24. The network address is canonicalized
// (host bits cleared) on construction.
class Subnet {
 public:
  constexpr Subnet() = default;
  Subnet(IPv4Address network, int prefix_length);

  // "a.b.c.d/len".
  static std::optional<Subnet> Parse(std::string_view text);

  bool Contains(IPv4Address addr) const;

  IPv4Address network() const { return network_; }
  int prefix_length() const { return prefix_length_; }
  // Number of addresses covered (2^(32-len)).
  std::uint64_t size() const { return std::uint64_t{1} << (32 - prefix_length_); }
  // First / last address of the block.
  IPv4Address first() const { return network_; }
  IPv4Address last() const {
    return IPv4Address(network_.bits() | static_cast<std::uint32_t>(size() - 1));
  }

  std::string ToString() const;

  auto operator<=>(const Subnet&) const = default;

 private:
  IPv4Address network_;
  int prefix_length_ = 0;
};

}  // namespace ddos::net

#endif  // DDOSCOPE_NET_IPV4_H_
