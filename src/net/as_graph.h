// Synthetic autonomous-system topology and valley-free routing.
//
// The Botlist schema carries per-bot BGP information and the paper observes
// that targets concentrate in "backbone autonomous systems" where "massive
// network resources ... play a critical function" (Section IV-B2). To turn
// that observation into an actionable defense analysis (where upstream
// should traffic be filtered?), this module builds a three-tier AS topology
// over the synthetic geo database:
//
//   tier 1  backbone organizations - a full peer mesh;
//   tier 2  hosting / cloud / data-center / registrar ASes - customers of
//           2..4 tier-1 providers;
//   tier 3  enterprise and residential ASes - customers of 1..3 tier-2
//           providers (same-country where possible).
//
// Every AS keeps a deterministic *primary* provider, which makes the
// valley-free route between two ASes unique: climb primary providers to
// tier 1, cross the mesh in one peer hop, descend to the destination.
// That is a deliberate simplification of BGP (no prepending, no cold
// potato), but it preserves the property the chokepoint analysis needs:
// transit concentrates in few upstream ASes.
#ifndef DDOSCOPE_NET_AS_GRAPH_H_
#define DDOSCOPE_NET_AS_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/geo_db.h"
#include "net/ipv4.h"

namespace ddos::net {

enum class AsTier : std::uint8_t {
  kBackbone = 1,  // tier 1
  kTransit = 2,   // tier 2
  kEdge = 3,      // tier 3
};

struct AsNode {
  Asn asn;
  AsTier tier = AsTier::kEdge;
  std::string country;       // ISO code of the AS's home block
  std::string organization;  // owning organization
  std::optional<Asn> primary_provider;  // nullopt for tier 1
  std::vector<Asn> providers;           // all provider links (upward)
};

class AsGraph {
 public:
  // Derives the topology from every allocated /16 block of the database.
  // Deterministic for a given (database, seed).
  static AsGraph Build(const geo::GeoDatabase& db, std::uint64_t seed);

  std::size_t size() const { return nodes_.size(); }
  std::span<const AsNode> nodes() const { return nodes_; }

  // Node lookup; throws std::out_of_range for foreign ASNs.
  const AsNode& at(Asn asn) const;
  bool contains(Asn asn) const { return index_.count(asn.value()) > 0; }

  // The valley-free route from `from` to `to`, inclusive of both endpoints.
  // Up the primary-provider chain, at most one tier-1 peer hop, down the
  // destination's chain. A route from an AS to itself is {asn}.
  std::vector<Asn> Path(Asn from, Asn to) const;

  // Convenience: the AS owning an address (via the geo database used at
  // build time is not retained; callers resolve addresses themselves).
  // Tier statistics for reporting.
  struct TierCounts {
    std::size_t backbone = 0;
    std::size_t transit = 0;
    std::size_t edge = 0;
  };
  TierCounts CountTiers() const;

 private:
  // Chain of ASes from `asn` up to (and including) its tier-1 root.
  std::vector<Asn> ChainToBackbone(Asn asn) const;

  std::vector<AsNode> nodes_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

}  // namespace ddos::net

#endif  // DDOSCOPE_NET_AS_GRAPH_H_
