#include "net/ipv4.h"

#include <stdexcept>

#include "common/strings.h"

namespace ddos::net {

std::optional<IPv4Address> IPv4Address::Parse(std::string_view text) {
  const auto parts = Split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t bits = 0;
  for (const auto& part : parts) {
    const auto v = ParseInt64(part);
    if (!v || *v < 0 || *v > 255) return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint32_t>(*v);
  }
  return IPv4Address(bits);
}

std::string IPv4Address::ToString() const {
  return StrFormat("%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
}

std::string Asn::ToString() const { return StrFormat("AS%u", value_); }

Subnet::Subnet(IPv4Address network, int prefix_length)
    : prefix_length_(prefix_length) {
  if (prefix_length < 0 || prefix_length > 32) {
    throw std::invalid_argument("Subnet: prefix length out of range");
  }
  const std::uint32_t mask =
      prefix_length == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_length);
  network_ = IPv4Address(network.bits() & mask);
}

std::optional<Subnet> Subnet::Parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Address::Parse(text.substr(0, slash));
  const auto len = ParseInt64(text.substr(slash + 1));
  if (!addr || !len || *len < 0 || *len > 32) return std::nullopt;
  return Subnet(*addr, static_cast<int>(*len));
}

bool Subnet::Contains(IPv4Address addr) const {
  const std::uint32_t mask =
      prefix_length_ == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_length_);
  return (addr.bits() & mask) == network_.bits();
}

std::string Subnet::ToString() const {
  return StrFormat("%s/%d", network_.ToString().c_str(), prefix_length_);
}

}  // namespace ddos::net
