#include "net/as_graph.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace ddos::net {

namespace {

AsTier TierFor(geo::OrgKind kind) {
  switch (kind) {
    case geo::OrgKind::kBackbone:
      return AsTier::kBackbone;
    case geo::OrgKind::kWebHosting:
    case geo::OrgKind::kCloudProvider:
    case geo::OrgKind::kDataCenter:
    case geo::OrgKind::kDomainRegistrar:
      return AsTier::kTransit;
    case geo::OrgKind::kEnterprise:
    case geo::OrgKind::kResidentialIsp:
      return AsTier::kEdge;
  }
  return AsTier::kEdge;
}

}  // namespace

AsGraph AsGraph::Build(const geo::GeoDatabase& db, std::uint64_t seed) {
  AsGraph graph;
  Rng rng(seed ^ 0xa5a5ull);

  // Enumerate one AS per allocated /16 block, via the per-country listings.
  std::vector<std::size_t> backbone, transit, edge;
  std::unordered_map<std::string, std::vector<std::size_t>> transit_by_country;
  for (const geo::CountrySpec& country : db.catalog().countries()) {
    for (const Subnet& block : db.BlocksForCountry(country.code)) {
      const geo::GeoRecord rec =
          db.Lookup(IPv4Address(block.network().bits() | 1));
      AsNode node;
      node.asn = rec.asn;
      node.tier = TierFor(rec.org_kind);
      node.country = std::string(rec.country_code);
      node.organization = std::string(rec.organization);
      const std::size_t idx = graph.nodes_.size();
      graph.index_.emplace(node.asn.value(), idx);
      switch (node.tier) {
        case AsTier::kBackbone:
          backbone.push_back(idx);
          break;
        case AsTier::kTransit:
          transit.push_back(idx);
          transit_by_country[node.country].push_back(idx);
          break;
        case AsTier::kEdge:
          edge.push_back(idx);
          break;
      }
      graph.nodes_.push_back(std::move(node));
    }
  }
  if (backbone.empty()) {
    // Degenerate catalogs (tiny test configs): promote the first transit or
    // edge AS so every chain terminates.
    std::vector<std::size_t>& donor = !transit.empty() ? transit : edge;
    if (donor.empty()) {
      throw std::invalid_argument("AsGraph: no allocated blocks");
    }
    graph.nodes_[donor.front()].tier = AsTier::kBackbone;
    backbone.push_back(donor.front());
    donor.erase(donor.begin());
  }

  auto pick = [&](const std::vector<std::size_t>& pool) {
    return pool[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  // Tier 2: customers of 2..4 backbone providers.
  for (const std::size_t idx : transit) {
    AsNode& node = graph.nodes_[idx];
    const int fanout = static_cast<int>(rng.UniformInt(
        2, std::min<std::int64_t>(4, static_cast<std::int64_t>(backbone.size()))));
    while (static_cast<int>(node.providers.size()) < fanout) {
      const Asn provider = graph.nodes_[pick(backbone)].asn;
      if (std::find(node.providers.begin(), node.providers.end(), provider) ==
          node.providers.end()) {
        node.providers.push_back(provider);
      }
    }
    node.primary_provider = node.providers.front();
  }

  // Tier 3: customers of 1..3 transit providers, same country preferred;
  // countries without local transit fall back to the global pool (or to a
  // backbone directly when there is no transit at all).
  for (const std::size_t idx : edge) {
    AsNode& node = graph.nodes_[idx];
    const std::vector<std::size_t>* pool = &transit;
    const auto it = transit_by_country.find(node.country);
    if (it != transit_by_country.end() && !it->second.empty()) {
      pool = &it->second;
    }
    if (pool->empty()) pool = &backbone;
    const int fanout = static_cast<int>(rng.UniformInt(
        1, std::min<std::int64_t>(3, static_cast<std::int64_t>(pool->size()))));
    while (static_cast<int>(node.providers.size()) < fanout) {
      const Asn provider = graph.nodes_[pick(*pool)].asn;
      if (std::find(node.providers.begin(), node.providers.end(), provider) ==
          node.providers.end()) {
        node.providers.push_back(provider);
      }
    }
    node.primary_provider = node.providers.front();
  }
  return graph;
}

const AsNode& AsGraph::at(Asn asn) const {
  const auto it = index_.find(asn.value());
  if (it == index_.end()) {
    throw std::out_of_range("AsGraph: unknown ASN " + asn.ToString());
  }
  return nodes_[it->second];
}

std::vector<Asn> AsGraph::ChainToBackbone(Asn asn) const {
  std::vector<Asn> chain;
  Asn current = asn;
  // Tiers strictly decrease along primary providers, so the chain length is
  // bounded by 3; the guard protects against malformed graphs.
  for (int guard = 0; guard < 8; ++guard) {
    chain.push_back(current);
    const AsNode& node = at(current);
    if (!node.primary_provider.has_value()) break;
    current = *node.primary_provider;
  }
  return chain;
}

std::vector<Asn> AsGraph::Path(Asn from, Asn to) const {
  if (from == to) return {from};
  const std::vector<Asn> up = ChainToBackbone(from);
  std::vector<Asn> down = ChainToBackbone(to);

  // If the chains meet below the backbone (shared provider), join there.
  for (std::size_t i = 0; i < up.size(); ++i) {
    for (std::size_t j = 0; j < down.size(); ++j) {
      if (up[i] == down[j]) {
        std::vector<Asn> path(up.begin(), up.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        for (std::size_t k = j; k-- > 0;) path.push_back(down[k]);
        return path;
      }
    }
  }
  // Otherwise cross the tier-1 mesh: up's root peers directly with down's.
  std::vector<Asn> path = up;
  for (std::size_t k = down.size(); k-- > 0;) path.push_back(down[k]);
  return path;
}

AsGraph::TierCounts AsGraph::CountTiers() const {
  TierCounts counts;
  for (const AsNode& node : nodes_) {
    switch (node.tier) {
      case AsTier::kBackbone:
        ++counts.backbone;
        break;
      case AsTier::kTransit:
        ++counts.transit;
        break;
      case AsTier::kEdge:
        ++counts.edge;
        break;
    }
  }
  return counts;
}

}  // namespace ddos::net
