// Incremental line framing over a TCP byte stream.
//
// The ddoscoped ingest protocol is line-oriented (one CSV attack row or one
// control verb per line), but TCP delivers arbitrary byte chunks. LineFramer
// accumulates appended bytes into lines eagerly - '\n'-terminated, with one
// trailing '\r' stripped so CRLF clients parse like LF clients - and hands
// them out in arrival order through Next().
//
// Overlong lines are a protocol violation, not a buffering problem: once an
// unterminated line exceeds max_line_bytes the framer switches to discard
// mode, swallows bytes until the next '\n', and reports the line exactly
// once, in stream order, with overflow=true (carrying a truncated prefix
// for diagnostics). The connection stays framed - one bad producer line
// costs one rejected record, not the connection - and the partial-line
// buffer stays bounded by max_line_bytes regardless of what the peer sends.
// (Completed lines are expected to be drained after every Append, as the
// server's read handler does; only the in-progress line is bounded.)
#ifndef DDOSCOPE_NETD_FRAMER_H_
#define DDOSCOPE_NETD_FRAMER_H_

#include <cstddef>
#include <deque>
#include <string>

namespace ddos::netd {

class LineFramer {
 public:
  // Diagnostics keep at most this much of an overlong line.
  static constexpr std::size_t kOverflowPrefixBytes = 256;

  explicit LineFramer(std::size_t max_line_bytes = 1 << 20)
      : max_line_bytes_(max_line_bytes) {}

  // Consumes n raw bytes from the stream, completing zero or more lines.
  void Append(const char* data, std::size_t n);

  // Pops the next complete line into *line (terminator removed, trailing
  // '\r' stripped). Returns false when no complete line is pending.
  // *overflow is true when the line exceeded max_line_bytes; *line then
  // holds the retained prefix (the overflowed remainder was discarded).
  bool Next(std::string* line, bool* overflow);

  // Takes the unterminated tail as a final partial line (the torn end of a
  // connection that closed mid-record). Returns false when the tail is
  // empty. *overflow as in Next.
  bool TakePartial(std::string* line, bool* overflow);

  // Bytes held: the in-progress line plus undelivered complete lines.
  std::size_t buffered() const;

  std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  struct Line {
    std::string text;
    bool overflow = false;
  };

  void FinishLine();

  std::size_t max_line_bytes_;
  std::deque<Line> ready_;
  std::string partial_;      // the in-progress (unterminated) line
  bool discarding_ = false;  // inside an overlong line, eating to '\n'
};

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_FRAMER_H_
