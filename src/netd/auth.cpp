#include "netd/auth.h"

#include <fstream>
#include <stdexcept>

#include "common/strings.h"

namespace ddos::netd {

void AuthTable::Add(TokenSpec spec) {
  std::string key = spec.token;
  tokens_.insert_or_assign(std::move(key), std::move(spec));
}

TokenSpec AuthTable::ParseSpec(std::string_view raw) {
  const std::string_view trimmed = Trim(raw);
  const std::vector<std::string> parts = Split(trimmed, ':');
  TokenSpec spec;
  if (parts.empty() || parts[0].empty()) {
    throw std::runtime_error("auth: empty token in spec '" +
                             std::string(trimmed) + "'");
  }
  if (parts.size() > 3) {
    throw std::runtime_error("auth: expected TOKEN[:NAME[:MAX_RECORDS]], got '" +
                             std::string(trimmed) + "'");
  }
  spec.token = parts[0];
  spec.name = parts.size() > 1 && !parts[1].empty()
                  ? parts[1]
                  : spec.token.substr(0, 8);
  if (parts.size() > 2) {
    const auto quota = ParseInt64(parts[2]);
    if (!quota || *quota < 0) {
      throw std::runtime_error("auth: bad quota '" + parts[2] + "' in spec '" +
                               std::string(trimmed) + "'");
    }
    spec.max_records = static_cast<std::uint64_t>(*quota);
  }
  return spec;
}

AuthTable AuthTable::FromSpecList(std::string_view specs) {
  AuthTable table;
  for (const std::string& spec : Split(specs, ',')) {
    if (Trim(spec).empty()) continue;
    table.Add(ParseSpec(spec));
  }
  return table;
}

AuthTable AuthTable::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("auth: cannot open token file " + path);
  AuthTable table;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    table.Add(ParseSpec(trimmed));
  }
  return table;
}

const TokenSpec* AuthTable::Lookup(std::string_view token) const {
  const auto it = tokens_.find(token);
  return it == tokens_.end() ? nullptr : &it->second;
}

}  // namespace ddos::netd
