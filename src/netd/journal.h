// The daemon's write-ahead ingest journal.
//
// ddoscoped's exactly-once story hangs on one ordering rule: a record
// reaches the journal before it reaches the engine, and the ACK that
// covers it is flushed only after both. The journal is therefore the
// daemon's source of truth - after any crash, `journal state >= engine
// state >= client-visible ACKs`, and recovery replays the journal tail
// past the last checkpoint to rebuild the exact engine state and the
// per-session committed counts that RESUME handshakes are answered from.
//
// Format (version 2): one header line `#ddoscoped-journal v2`, then one
// line per accepted record:
//
//   <session-id>\t<session-seq>\t<attack CSV row>
//
// `session-id` is `-` and `session-seq` is 0 for sessionless feeds (plain
// FeedClient / nc). Version-1 journals (bare attack CSV with header) are
// still readable so pre-existing archives replay.
//
// Batch atomicity: AppendBatch writes a whole poll-tick's records as one
// buffer and either all of it lands or none does - a failed or short
// write is undone by truncating back to the pre-batch size, so the
// journal is always record-aligned and its line order IS the engine push
// order (replay needs no dedup). Writes go through common/iohooks.h, so
// the chaos layer can serve ENOSPC/EIO/short writes here.
//
// Durability policy (--journal-fsync):
//   always   - fsync after every committed batch. Loss window on machine
//              crash: zero committed-and-ACKed records.
//   interval - fsync every `fsync_every` records and at checkpoints/drain.
//              Loss window on machine crash: up to fsync_every records.
//   off      - fsync only at checkpoints and drain. Loss window on machine
//              crash: everything since the last checkpoint.
// Process kill (kill -9) loses nothing under ANY policy: write(2)'d data
// survives the process; fsync only guards machine/kernel crashes.
#ifndef DDOSCOPE_NETD_JOURNAL_H_
#define DDOSCOPE_NETD_JOURNAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "data/records.h"

namespace ddos::netd {

enum class FsyncPolicy : std::uint8_t { kAlways, kInterval, kOff };

std::string_view FsyncPolicyName(FsyncPolicy policy);
std::optional<FsyncPolicy> ParseFsyncPolicy(std::string_view text);

class Journal {
 public:
  // Opens (creating or truncating; appending when `append_existing` and
  // the file exists) and writes the v2 header on fresh files. Throws
  // std::runtime_error when the file cannot be opened.
  Journal(const std::string& path, bool append_existing, FsyncPolicy policy,
          std::uint64_t fsync_every);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Appends one batch of records, all-or-nothing: on any unrecoverable
  // write error the file is truncated back to its pre-batch size and the
  // call returns false (EINTR and short writes are retried/continued, not
  // errors). `session_id` may be empty (journaled as `-`). `records` pairs
  // each record with its session sequence number.
  bool AppendBatch(
      const std::string& session_id,
      const std::vector<std::pair<data::AttackRecord, std::uint64_t>>&
          records);

  // Forces an fsync now (checkpoint barrier / drain), regardless of
  // policy. Returns false when fsync itself failed (counted, non-fatal).
  bool Sync();

  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t append_failures() const { return append_failures_; }
  std::uint64_t fsyncs() const { return fsyncs_; }
  std::uint64_t fsync_failures() const { return fsync_failures_; }
  FsyncPolicy policy() const { return policy_; }

 private:
  bool WriteAll(const char* data, std::size_t len);
  void MaybePolicySync();

  int fd_ = -1;
  FsyncPolicy policy_;
  std::uint64_t fsync_every_;
  std::uint64_t cur_size_ = 0;           // committed byte size of the file
  std::uint64_t records_appended_ = 0;
  std::uint64_t records_since_sync_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t append_failures_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t fsync_failures_ = 0;
};

// One replayed journal line.
struct JournalEntry {
  std::string session;  // "" for sessionless ("-") entries
  std::uint64_t seq = 0;
  data::AttackRecord record;
};

struct JournalContents {
  std::vector<JournalEntry> entries;  // exact ingest order
  // Highest committed sequence per session - the RESUME answer table.
  std::map<std::string, std::uint64_t> session_high;
  bool torn_tail = false;  // trailing unparseable line(s) were dropped
};

// Reads a v2 (or v1 CSV) journal. Unparseable trailing lines - a batch a
// kill interrupted mid-write - are dropped and flagged, never fatal.
// Throws std::runtime_error only when the file cannot be opened.
JournalContents ReadJournal(const std::string& path);

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_JOURNAL_H_
