#include "netd/connection.h"

#include "common/strings.h"
#include "data/csv.h"

namespace ddos::netd {

namespace {

// A row starting with the first header column is the archival header line;
// tolerated so saved traces replay verbatim.
bool IsHeaderLine(const std::string& line) {
  return line.rfind("ddos_id,", 0) == 0;
}

bool IsValidSessionId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string_view CloseReasonName(CloseReason reason) {
  switch (reason) {
    case CloseReason::kNone: return "none";
    case CloseReason::kEndOfFeed: return "end";
    case CloseReason::kAuthFailure: return "auth";
    case CloseReason::kQuotaExceeded: return "quota";
    case CloseReason::kProtocolError: return "protocol";
    case CloseReason::kDrained: return "drain";
    case CloseReason::kSlowClient: return "slow-client";
    case CloseReason::kJournalFailure: return "journal";
  }
  return "unknown";
}

IngestProtocol::IngestProtocol(const AuthTable* auth,
                               const IngestLimits& limits,
                               SessionTable* sessions)
    : auth_(auth), limits_(limits), sessions_(sessions) {
  const bool auth_required = auth_ != nullptr && !auth_->empty();
  state_ = auth_required ? ConnState::kAwaitAuth : ConnState::kStreaming;
  if (!auth_required) max_records_ = limits_.default_max_records;
}

void IngestProtocol::Reject(data::IngestErrorKind kind) {
  errors_.Add(kind);
  ++rejected_;
}

void IngestProtocol::CloseWith(CloseReason reason,
                               const std::string& err_line) {
  state_ = ConnState::kClosing;
  close_reason_ = reason;
  output_ += err_line;
}

IngestProtocol::LineResult IngestProtocol::OnLine(const std::string& line,
                                                  bool overflow,
                                                  data::AttackRecord* record) {
  LineResult result;
  if (state_ == ConnState::kClosing) {
    result.close = true;
    return result;
  }

  if (state_ == ConnState::kAwaitAuth) {
    if (line.rfind("AUTH ", 0) != 0) {
      CloseWith(CloseReason::kAuthFailure, "ERR auth-required\n");
      result.close = true;
      return result;
    }
    const std::string_view token = Trim(std::string_view(line).substr(5));
    const TokenSpec* spec = auth_->Lookup(token);
    if (spec == nullptr) {
      CloseWith(CloseReason::kAuthFailure, "ERR unauthorized\n");
      result.close = true;
      return result;
    }
    client_name_ = spec->name;
    max_records_ = spec->max_records;
    state_ = ConnState::kStreaming;
    output_ += "OK " + client_name_ + "\n";
    return result;
  }

  // kStreaming.
  if (overflow) {
    Reject(data::IngestErrorKind::kTruncatedLine);
    return result;
  }
  if (line.empty() || IsHeaderLine(line)) return result;
  if (line.rfind("RESUME ", 0) == 0) return HandleResume(line);
  if (line == "PING") {
    output_ += StrFormat("PONG %llu\n",
                         static_cast<unsigned long long>(session_total()));
    return result;
  }
  if (line == "END") {
    CloseWith(CloseReason::kEndOfFeed,
              StrFormat("ACK %llu end\n",
                        static_cast<unsigned long long>(session_total())));
    result.close = true;
    return result;
  }
  if (line.rfind("AUTH ", 0) == 0) {
    CloseWith(CloseReason::kProtocolError, "ERR unexpected-auth\n");
    result.close = true;
    return result;
  }

  data::IngestError err;
  if (!data::TryParseAttackLine(line, record, &err)) {
    Reject(err.kind);
    return result;
  }
  if (limits_.detect_duplicate_ids &&
      !seen_ids_.insert(record->ddos_id).second) {
    Reject(data::IngestErrorKind::kDuplicateId);
    return result;
  }
  if (max_records_ > 0 && records_ >= max_records_) {
    CloseWith(CloseReason::kQuotaExceeded,
              StrFormat("ERR quota-exceeded after %llu records\n",
                        static_cast<unsigned long long>(records_)));
    result.close = true;
    return result;
  }
  result.has_record = true;
  return result;
}

IngestProtocol::LineResult IngestProtocol::HandleResume(
    const std::string& line) {
  LineResult result;
  // RESUME must come before any data: once rows were accepted under one
  // identity, rebinding the counts mid-stream would corrupt both sessions.
  if (sessions_ == nullptr || records_ > 0 || !session_id_.empty()) {
    CloseWith(CloseReason::kProtocolError, "ERR unexpected-resume\n");
    result.close = true;
    return result;
  }
  const auto parts = Split(Trim(std::string_view(line).substr(7)), ' ');
  if (parts.empty() || parts.size() > 2 || !IsValidSessionId(parts[0])) {
    CloseWith(CloseReason::kProtocolError, "ERR bad-session-id\n");
    result.close = true;
    return result;
  }
  const std::string id(parts[0]);
  if (!sessions_->Acquire(id)) {
    CloseWith(CloseReason::kProtocolError, "ERR session-busy\n");
    result.close = true;
    return result;
  }
  session_id_ = id;
  session_base_ = sessions_->Get(id);
  // The client's claimed last-acked seq (parts[1], when present) is
  // informational: the server's committed count is authoritative and is
  // what the client prunes against.
  output_ += StrFormat("OK RESUME %llu\n",
                       static_cast<unsigned long long>(session_base_));
  return result;
}

void IngestProtocol::OnRecordIngested() {
  ++records_;
  if (limits_.ack_every > 0 && records_ % limits_.ack_every == 0) {
    output_ += StrFormat("ACK %llu\n",
                         static_cast<unsigned long long>(session_total()));
  }
}

void IngestProtocol::OnDrain() {
  if (state_ == ConnState::kClosing) return;
  CloseWith(CloseReason::kDrained,
            StrFormat("ACK %llu drain\n",
                      static_cast<unsigned long long>(session_total())));
}

}  // namespace ddos::netd
