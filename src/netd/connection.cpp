#include "netd/connection.h"

#include "common/strings.h"
#include "data/csv.h"

namespace ddos::netd {

namespace {

// A row starting with the first header column is the archival header line;
// tolerated so saved traces replay verbatim.
bool IsHeaderLine(const std::string& line) {
  return line.rfind("ddos_id,", 0) == 0;
}

}  // namespace

std::string_view CloseReasonName(CloseReason reason) {
  switch (reason) {
    case CloseReason::kNone: return "none";
    case CloseReason::kEndOfFeed: return "end";
    case CloseReason::kAuthFailure: return "auth";
    case CloseReason::kQuotaExceeded: return "quota";
    case CloseReason::kProtocolError: return "protocol";
    case CloseReason::kDrained: return "drain";
    case CloseReason::kSlowClient: return "slow-client";
  }
  return "unknown";
}

IngestProtocol::IngestProtocol(const AuthTable* auth,
                               const IngestLimits& limits)
    : auth_(auth), limits_(limits) {
  const bool auth_required = auth_ != nullptr && !auth_->empty();
  state_ = auth_required ? ConnState::kAwaitAuth : ConnState::kStreaming;
  if (!auth_required) max_records_ = limits_.default_max_records;
}

void IngestProtocol::Reject(data::IngestErrorKind kind) {
  errors_.Add(kind);
  ++rejected_;
}

void IngestProtocol::CloseWith(CloseReason reason,
                               const std::string& err_line) {
  state_ = ConnState::kClosing;
  close_reason_ = reason;
  output_ += err_line;
}

IngestProtocol::LineResult IngestProtocol::OnLine(const std::string& line,
                                                  bool overflow,
                                                  data::AttackRecord* record) {
  LineResult result;
  if (state_ == ConnState::kClosing) {
    result.close = true;
    return result;
  }

  if (state_ == ConnState::kAwaitAuth) {
    if (line.rfind("AUTH ", 0) != 0) {
      CloseWith(CloseReason::kAuthFailure, "ERR auth-required\n");
      result.close = true;
      return result;
    }
    const std::string_view token = Trim(std::string_view(line).substr(5));
    const TokenSpec* spec = auth_->Lookup(token);
    if (spec == nullptr) {
      CloseWith(CloseReason::kAuthFailure, "ERR unauthorized\n");
      result.close = true;
      return result;
    }
    client_name_ = spec->name;
    max_records_ = spec->max_records;
    state_ = ConnState::kStreaming;
    output_ += "OK " + client_name_ + "\n";
    return result;
  }

  // kStreaming.
  if (overflow) {
    Reject(data::IngestErrorKind::kTruncatedLine);
    return result;
  }
  if (line.empty() || IsHeaderLine(line)) return result;
  if (line == "PING") {
    output_ += StrFormat("PONG %llu\n",
                         static_cast<unsigned long long>(records_));
    return result;
  }
  if (line == "END") {
    CloseWith(CloseReason::kEndOfFeed,
              StrFormat("ACK %llu end\n",
                        static_cast<unsigned long long>(records_)));
    result.close = true;
    return result;
  }
  if (line.rfind("AUTH ", 0) == 0) {
    CloseWith(CloseReason::kProtocolError, "ERR unexpected-auth\n");
    result.close = true;
    return result;
  }

  data::IngestError err;
  if (!data::TryParseAttackLine(line, record, &err)) {
    Reject(err.kind);
    return result;
  }
  if (limits_.detect_duplicate_ids &&
      !seen_ids_.insert(record->ddos_id).second) {
    Reject(data::IngestErrorKind::kDuplicateId);
    return result;
  }
  if (max_records_ > 0 && records_ >= max_records_) {
    CloseWith(CloseReason::kQuotaExceeded,
              StrFormat("ERR quota-exceeded after %llu records\n",
                        static_cast<unsigned long long>(records_)));
    result.close = true;
    return result;
  }
  result.has_record = true;
  return result;
}

void IngestProtocol::OnRecordIngested() {
  ++records_;
  if (limits_.ack_every > 0 && records_ % limits_.ack_every == 0) {
    output_ +=
        StrFormat("ACK %llu\n", static_cast<unsigned long long>(records_));
  }
}

void IngestProtocol::OnDrain() {
  if (state_ == ConnState::kClosing) return;
  CloseWith(CloseReason::kDrained,
            StrFormat("ACK %llu drain\n",
                      static_cast<unsigned long long>(records_)));
}

}  // namespace ddos::netd
