#include "netd/http.h"

#include "common/strings.h"

namespace ddos::netd {

bool HttpHeadComplete(std::string_view buffer, std::size_t* head_bytes) {
  // Tolerate both CRLF (the standard) and bare LF (hand-typed probes).
  if (const std::size_t pos = buffer.find("\r\n\r\n");
      pos != std::string_view::npos) {
    *head_bytes = pos + 4;
    return true;
  }
  if (const std::size_t pos = buffer.find("\n\n");
      pos != std::string_view::npos) {
    *head_bytes = pos + 2;
    return true;
  }
  return false;
}

bool ParseHttpRequest(std::string_view head, HttpRequest* out,
                      std::string* error) {
  out->headers.clear();
  std::size_t pos = 0;
  bool first = true;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) break;  // end of head
    if (first) {
      first = false;
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
          line.find(' ', sp2 + 1) != std::string_view::npos) {
        *error = "malformed request line";
        return false;
      }
      out->method = std::string(line.substr(0, sp1));
      out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      out->version = std::string(line.substr(sp2 + 1));
      if (out->method.empty() || out->target.empty() ||
          out->version.rfind("HTTP/", 0) != 0) {
        *error = "malformed request line";
        return false;
      }
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      *error = "malformed header line";
      return false;
    }
    out->headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                              std::string(Trim(line.substr(colon + 1))));
  }
  if (first) {
    *error = "empty request";
    return false;
  }
  return true;
}

std::string_view HttpStatusText(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 400: return "400 Bad Request";
    case 404: return "404 Not Found";
    case 405: return "405 Method Not Allowed";
    case 408: return "408 Request Timeout";
    case 503: return "503 Service Unavailable";
    default:  return "500 Internal Server Error";
  }
}

std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += HttpStatusText(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace ddos::netd
