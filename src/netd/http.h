// Minimal HTTP/1.1 request parsing and response building for the daemon's
// scrape surface (/metrics, /status, /healthz).
//
// This is deliberately not a web server: ddoscoped answers GET requests
// with Connection: close semantics - exactly the contract of a Prometheus
// scrape or a curl health probe - and everything stateful (routing, body
// generation) lives in netd/server.cpp. Header values beyond the request
// line are collected but uninterpreted; there is no keep-alive, chunked
// encoding, or request body support. Parsing is pure string work so it
// unit-tests without a socket.
#ifndef DDOSCOPE_NETD_HTTP_H_
#define DDOSCOPE_NETD_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ddos::netd {

struct HttpRequest {
  std::string method;   // "GET"
  std::string target;   // "/metrics" (query string kept verbatim)
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;  // lowercased keys
};

// True when `buffer` already holds a complete request head (terminating
// blank line); *head_bytes receives its length including the terminator.
bool HttpHeadComplete(std::string_view buffer, std::size_t* head_bytes);

// Parses a complete request head. Returns false (with *error set) on a
// malformed request line or header.
bool ParseHttpRequest(std::string_view head, HttpRequest* out,
                      std::string* error);

// "200 OK", "404 Not Found", ... for the handful of statuses the daemon
// emits; unknown codes render as "500 Internal Server Error".
std::string_view HttpStatusText(int status);

// Serializes a full close-delimited response: status line, Content-Type,
// Content-Length, Connection: close, blank line, body.
std::string BuildHttpResponse(int status, std::string_view content_type,
                              std::string_view body);

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_HTTP_H_
