// ddoscoped: the multi-client TCP ingest daemon.
//
// The paper's dataset is a continuously collected, multi-source attack
// feed; IngestServer gives the reproduction that operational shape. One
// poll()-driven, non-blocking event loop owns two listeners:
//
//  * an ingest port speaking the line protocol of netd/connection.h, where
//    many concurrent clients stream Table-I attack rows into one
//    ShardedStreamEngine (the loop thread is the engine's single router,
//    so the sharded engine's SPSC contract holds by construction);
//  * an HTTP port answering GET /metrics (Prometheus text exposition of
//    the full ddoscope_* registry via obs/export.h), GET /status (a JSON
//    engine snapshot: tallies, shard queue depths, connected clients), and
//    GET /healthz.
//
// Backpressure has two independent guards. Inbound, the engine itself is
// the throttle: Push blocks in bounded backoff when shard rings fill, which
// stops the loop from reading more socket bytes - TCP flow control then
// pushes back on every producer. Outbound, a slow client that stops
// reading its ACKs accrues pending reply bytes; past max_output_buffer the
// connection is closed (reason "slow-client") rather than buffering
// without bound.
//
// Lifecycle: Bind() resolves the listeners (port 0 = ephemeral, for tests)
// and, under resume, restores the engine from the checkpoint; Run() blocks
// in the event loop until a drain completes. RequestDrain() - thread-safe,
// with an async-signal-safe variant for SIGTERM/SIGINT handlers - stops
// accepting, final-ACKs every client (`ACK <n> drain`, the client's durable
// high-water mark; rows after it are the unacked tail to replay after
// restart), flushes, writes a final checkpoint (stream/checkpoint.h
// version-2 sharded format, atomic rename), and returns from Run(). The
// checkpoint precedes StreamEngine::Finish for the same reason the watch
// CLI's does: Finish sweeps pending collaboration state that a later
// resume must still be able to stitch.
#ifndef DDOSCOPE_NETD_SERVER_H_
#define DDOSCOPE_NETD_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/ingest_error.h"
#include "geo/mmdb.h"
#include "netd/auth.h"
#include "netd/connection.h"
#include "netd/framer.h"
#include "netd/journal.h"
#include "netd/socket.h"
#include "obs/metrics.h"
#include "stream/engine.h"
#include "stream/sharded.h"

namespace ddos::netd {

struct NetdConfig {
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;  // 0 = ephemeral (tests/benches)
  std::uint16_t http_port = 0;

  AuthTable auth;       // empty = authentication disabled
  IngestLimits limits;  // ack cadence, anonymous quota, dedupe

  std::size_t shards = 1;  // worker engines behind the router loop
  stream::StreamEngineConfig engine;

  // Compiled geo database (geo/mmdb.h) for live hot-path enrichment. When
  // set, Bind() maps the file once and every shard tags records through
  // the shared mapping; /status grows a "geo" section and /metrics the
  // ddoscope_geo_* series. Enrichment is a live view - it is never
  // checkpointed, and a resumed daemon restarts its geo tallies.
  std::string geo_path;
  stream::GeoEnrichConfig geo_enrich;

  std::size_t max_line_bytes = 1 << 20;        // per-row cap (framer)
  std::size_t max_output_buffer = 256 << 10;   // slow-client write budget
  std::size_t max_connections = 256;           // concurrent ingest+http fds

  // Persistence. checkpoint_every counts accepted records between periodic
  // checkpoints (0 = final drain checkpoint only); resume restores from
  // checkpoint_path when the file exists (a missing file starts fresh, so
  // a supervisor can always pass --resume). journal_path, when set,
  // receives every accepted record as attack CSV in exact ingest order -
  // the daemon's archival feed, and the reference a sequential replay must
  // match bit-for-bit.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  bool resume = false;
  std::string journal_path;

  // Journal durability (netd/journal.h documents the loss windows).
  FsyncPolicy journal_fsync = FsyncPolicy::kInterval;
  std::uint64_t journal_fsync_every = 4096;

  // Watchdog: every watchdog_interval_ms the loop compares per-shard
  // progress; a shard with queued work and no progress for stuck_after_ms
  // is reported stuck (gauge + degraded /healthz). 0 disables.
  int watchdog_interval_ms = 1000;
  int stuck_after_ms = 5000;

  // Slow-loris guard: an HTTP connection that has not completed its
  // request head within this deadline gets `408` and the door. The http
  // connection count is additionally capped (excess accepts are shed)
  // so probes cannot crowd out ingest fds.
  int http_header_timeout_ms = 5000;
  std::size_t max_http_connections = 32;
};

class IngestServer {
 public:
  explicit IngestServer(NetdConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Binds listeners, opens the journal, restores a resumed engine. Throws
  // std::runtime_error on failure. Call once, before Run().
  void Bind();

  std::uint16_t ingest_port() const { return ingest_port_; }
  std::uint16_t http_port() const { return http_port_; }

  // Seeds the engine from an on-disk feed before serving: "csv" reads an
  // attack table (malformed rows skipped and tallied in error_report()),
  // "bin" a `ddoscope convert` binary file (data/binrecords.h; corruption
  // throws - startup must fail loudly, not serve half a preload). Records
  // flow through the same parsed-record Push path as client rows but are
  // neither journaled nor counted as accepted, so checkpoint meta.records
  // keeps its journal-coverage meaning. Call between Bind() and Run();
  // returns the number of records pushed.
  std::uint64_t Preload(const std::string& path, const std::string& format);
  std::uint64_t preloaded_records() const { return preloaded_records_; }

  // The blocking event loop; returns once a requested drain has completed
  // (all clients final-ACKed and closed, final checkpoint written).
  void Run();

  // Graceful-drain triggers. RequestDrain is safe from any thread;
  // RequestDrainFromSignal is additionally async-signal-safe (one atomic
  // store and one write(2) on the wake pipe).
  void RequestDrain();
  void RequestDrainFromSignal() noexcept;

  // Crash simulation (thread-safe): Run() returns at the top of the next
  // tick with NO drain, NO final ACKs, NO checkpoint, and NO journal sync
  // - the in-process equivalent of kill -9. Everything the recovery path
  // guarantees must hold from the journal alone after this.
  void RequestHardStop() noexcept;

  // Post-Run() accessors.
  std::uint64_t accepted_records() const { return total_accepted_; }
  const data::IngestErrorReport& error_report() const { return errors_; }
  std::uint64_t connections_seen() const { return connections_seen_; }
  // Folds the shards (ShardedStreamEngine::Finish, first call only) and
  // snapshots the final engine state. Only valid after Run() returned.
  stream::StreamSnapshot FinishAndSnapshot();

  // The daemon's metric registry (always armed; /metrics serves it).
  obs::MetricsRegistry& metrics() { return registry_; }

  // Journal-replayed records during a resumed Bind() (0 on fresh starts).
  std::uint64_t replayed_records() const { return replayed_records_; }

  // The underlying engine; valid after Bind(). Exposed for chaos tests
  // (ChaosStallShard); production callers have no business here.
  stream::ShardedStreamEngine& engine() { return *engine_; }

 private:
  struct Conn;

  void AcceptPending(int listener_fd, bool http);
  void HandleIngestRead(Conn& conn);
  void HandleHttpRead(Conn& conn);
  void ProcessFrames(Conn& conn);
  // Write-ahead commit of a tick's accepted records: journal append (all
  // or nothing), then engine pushes, then the session table - all before
  // the protocol output flushes, so no ACK ever outruns the journal.
  void CommitPending(Conn& conn);
  void FlushOutput(Conn& conn);
  void SyncRejectCounters(Conn& conn);
  void CloseConn(Conn& conn, CloseReason reason);
  void BeginDrain();
  bool DrainComplete() const;
  void MirrorJournalFsyncFailures();
  void RunWatchdog(std::chrono::steady_clock::time_point now);
  void ScanHttpDeadlines(std::chrono::steady_clock::time_point now);
  std::size_t CountHttpConns() const;
  void WriteCheckpoint();
  void MaybePeriodicCheckpoint();
  data::IngestErrorReport AggregateErrors() const;
  std::string BuildStatusJson();
  std::string RouteHttp(const std::string& head);
  void ResolveMetricHandles();

  NetdConfig config_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<geo::GeoMmdb> geo_;  // mapped once, shared by all shards
  std::unique_ptr<stream::ShardedStreamEngine> engine_;

  FdHandle ingest_listener_;
  FdHandle http_listener_;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;
  FdHandle wake_rd_, wake_wr_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::unique_ptr<Journal> journal_;
  SessionTable sessions_;
  bool bound_ = false;
  bool running_ = false;
  bool draining_ = false;
  bool finished_ = false;
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> hard_stop_{false};
  std::chrono::steady_clock::time_point drain_started_{};
  std::chrono::steady_clock::time_point started_{};
  std::chrono::steady_clock::time_point accept_cooldown_until_{};
  std::chrono::steady_clock::time_point last_watchdog_{};

  std::uint64_t total_accepted_ = 0;       // engine-ingested records, ever
  std::uint64_t preloaded_records_ = 0;    // Preload() seeds (not accepted)
  std::uint64_t accepted_at_checkpoint_ = 0;
  std::uint64_t connections_seen_ = 0;
  std::uint64_t replayed_records_ = 0;     // journal tail replayed at Bind
  std::uint64_t journal_fsync_failures_seen_ = 0;  // mirrored to obs
  data::IngestErrorReport errors_;         // closed-connection tallies

  // Watchdog state: last seen per-shard applied counts and, for shards
  // currently making no progress with queued work, when that started.
  std::vector<std::uint64_t> watchdog_prev_;
  std::vector<std::chrono::steady_clock::time_point> watchdog_stuck_since_;
  std::size_t stuck_shards_ = 0;

  // Resolved obs handles (registry_ outlives them by construction).
  obs::Counter* obs_connections_ = nullptr;
  obs::Gauge* obs_active_ = nullptr;
  obs::Counter* obs_bytes_in_ = nullptr;
  obs::Counter* obs_bytes_out_ = nullptr;
  obs::Counter* obs_records_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;
  obs::Counter* obs_auth_failures_ = nullptr;
  obs::Counter* obs_quota_rejections_ = nullptr;
  obs::Counter* obs_slow_closes_ = nullptr;
  std::array<obs::Counter*, 4> obs_http_requests_{};  // metrics/status/healthz/other
  obs::Histogram* obs_checkpoint_seconds_ = nullptr;
  obs::Gauge* obs_drain_millis_ = nullptr;
  obs::Gauge* obs_stuck_shards_ = nullptr;
  obs::Counter* obs_accept_shed_ = nullptr;
  obs::Counter* obs_http_timeouts_ = nullptr;
  obs::Counter* obs_http_sheds_ = nullptr;
  obs::Counter* obs_journal_failures_ = nullptr;
  obs::Counter* obs_journal_fsync_failures_ = nullptr;
  obs::Counter* obs_replayed_ = nullptr;
  obs::Counter* obs_checkpoint_failures_ = nullptr;
  obs::Counter* obs_resumed_sessions_ = nullptr;
  std::array<obs::Counter*, data::kIngestErrorKindCount> obs_errors_{};
};

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_SERVER_H_
