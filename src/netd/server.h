// ddoscoped: the multi-client TCP ingest daemon.
//
// The paper's dataset is a continuously collected, multi-source attack
// feed; IngestServer gives the reproduction that operational shape. One
// poll()-driven, non-blocking event loop owns two listeners:
//
//  * an ingest port speaking the line protocol of netd/connection.h, where
//    many concurrent clients stream Table-I attack rows into one
//    ShardedStreamEngine (the loop thread is the engine's single router,
//    so the sharded engine's SPSC contract holds by construction);
//  * an HTTP port answering GET /metrics (Prometheus text exposition of
//    the full ddoscope_* registry via obs/export.h), GET /status (a JSON
//    engine snapshot: tallies, shard queue depths, connected clients), and
//    GET /healthz.
//
// Backpressure has two independent guards. Inbound, the engine itself is
// the throttle: Push blocks in bounded backoff when shard rings fill, which
// stops the loop from reading more socket bytes - TCP flow control then
// pushes back on every producer. Outbound, a slow client that stops
// reading its ACKs accrues pending reply bytes; past max_output_buffer the
// connection is closed (reason "slow-client") rather than buffering
// without bound.
//
// Lifecycle: Bind() resolves the listeners (port 0 = ephemeral, for tests)
// and, under resume, restores the engine from the checkpoint; Run() blocks
// in the event loop until a drain completes. RequestDrain() - thread-safe,
// with an async-signal-safe variant for SIGTERM/SIGINT handlers - stops
// accepting, final-ACKs every client (`ACK <n> drain`, the client's durable
// high-water mark; rows after it are the unacked tail to replay after
// restart), flushes, writes a final checkpoint (stream/checkpoint.h
// version-2 sharded format, atomic rename), and returns from Run(). The
// checkpoint precedes StreamEngine::Finish for the same reason the watch
// CLI's does: Finish sweeps pending collaboration state that a later
// resume must still be able to stitch.
#ifndef DDOSCOPE_NETD_SERVER_H_
#define DDOSCOPE_NETD_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/ingest_error.h"
#include "netd/auth.h"
#include "netd/connection.h"
#include "netd/framer.h"
#include "netd/socket.h"
#include "obs/metrics.h"
#include "stream/engine.h"
#include "stream/sharded.h"

namespace ddos::netd {

struct NetdConfig {
  std::string host = "127.0.0.1";
  std::uint16_t ingest_port = 0;  // 0 = ephemeral (tests/benches)
  std::uint16_t http_port = 0;

  AuthTable auth;       // empty = authentication disabled
  IngestLimits limits;  // ack cadence, anonymous quota, dedupe

  std::size_t shards = 1;  // worker engines behind the router loop
  stream::StreamEngineConfig engine;

  std::size_t max_line_bytes = 1 << 20;        // per-row cap (framer)
  std::size_t max_output_buffer = 256 << 10;   // slow-client write budget
  std::size_t max_connections = 256;           // concurrent ingest+http fds

  // Persistence. checkpoint_every counts accepted records between periodic
  // checkpoints (0 = final drain checkpoint only); resume restores from
  // checkpoint_path when the file exists (a missing file starts fresh, so
  // a supervisor can always pass --resume). journal_path, when set,
  // receives every accepted record as attack CSV in exact ingest order -
  // the daemon's archival feed, and the reference a sequential replay must
  // match bit-for-bit.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  bool resume = false;
  std::string journal_path;
};

class IngestServer {
 public:
  explicit IngestServer(NetdConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Binds listeners, opens the journal, restores a resumed engine. Throws
  // std::runtime_error on failure. Call once, before Run().
  void Bind();

  std::uint16_t ingest_port() const { return ingest_port_; }
  std::uint16_t http_port() const { return http_port_; }

  // The blocking event loop; returns once a requested drain has completed
  // (all clients final-ACKed and closed, final checkpoint written).
  void Run();

  // Graceful-drain triggers. RequestDrain is safe from any thread;
  // RequestDrainFromSignal is additionally async-signal-safe (one atomic
  // store and one write(2) on the wake pipe).
  void RequestDrain();
  void RequestDrainFromSignal() noexcept;

  // Post-Run() accessors.
  std::uint64_t accepted_records() const { return total_accepted_; }
  const data::IngestErrorReport& error_report() const { return errors_; }
  std::uint64_t connections_seen() const { return connections_seen_; }
  // Folds the shards (ShardedStreamEngine::Finish, first call only) and
  // snapshots the final engine state. Only valid after Run() returned.
  stream::StreamSnapshot FinishAndSnapshot();

  // The daemon's metric registry (always armed; /metrics serves it).
  obs::MetricsRegistry& metrics() { return registry_; }

 private:
  struct Conn;

  void AcceptPending(int listener_fd, bool http);
  void HandleIngestRead(Conn& conn);
  void HandleHttpRead(Conn& conn);
  void ProcessFrames(Conn& conn);
  void IngestRecord(Conn& conn, const data::AttackRecord& record);
  void FlushOutput(Conn& conn);
  void SyncRejectCounters(Conn& conn);
  void CloseConn(Conn& conn, CloseReason reason);
  void BeginDrain();
  bool DrainComplete() const;
  void WriteCheckpoint();
  void MaybePeriodicCheckpoint();
  data::IngestErrorReport AggregateErrors() const;
  std::string BuildStatusJson();
  std::string RouteHttp(const std::string& head);
  void ResolveMetricHandles();

  NetdConfig config_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<stream::ShardedStreamEngine> engine_;

  FdHandle ingest_listener_;
  FdHandle http_listener_;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t http_port_ = 0;
  FdHandle wake_rd_, wake_wr_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::ofstream journal_;
  bool bound_ = false;
  bool running_ = false;
  bool draining_ = false;
  bool finished_ = false;
  std::atomic<bool> drain_requested_{false};
  std::chrono::steady_clock::time_point drain_started_{};
  std::chrono::steady_clock::time_point started_{};

  std::uint64_t total_accepted_ = 0;       // engine-ingested records, ever
  std::uint64_t accepted_at_checkpoint_ = 0;
  std::uint64_t connections_seen_ = 0;
  data::IngestErrorReport errors_;         // closed-connection tallies

  // Resolved obs handles (registry_ outlives them by construction).
  obs::Counter* obs_connections_ = nullptr;
  obs::Gauge* obs_active_ = nullptr;
  obs::Counter* obs_bytes_in_ = nullptr;
  obs::Counter* obs_bytes_out_ = nullptr;
  obs::Counter* obs_records_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;
  obs::Counter* obs_auth_failures_ = nullptr;
  obs::Counter* obs_quota_rejections_ = nullptr;
  obs::Counter* obs_slow_closes_ = nullptr;
  std::array<obs::Counter*, 4> obs_http_requests_{};  // metrics/status/healthz/other
  obs::Histogram* obs_checkpoint_seconds_ = nullptr;
  obs::Gauge* obs_drain_millis_ = nullptr;
  std::array<obs::Counter*, data::kIngestErrorKindCount> obs_errors_{};
};

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_SERVER_H_
