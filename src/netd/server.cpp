#include "netd/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "common/iohooks.h"
#include "common/strings.h"
#include "data/binrecords.h"
#include "data/csv.h"
#include "data/taxonomy.h"
#include "netd/http.h"
#include "obs/export.h"
#include "stream/checkpoint.h"

namespace ddos::netd {

namespace {

using Clock = std::chrono::steady_clock;

// Stragglers that have not flushed their final drain ACK within this long
// are force-closed; a graceful shutdown must not hang on one dead peer.
constexpr std::chrono::seconds kDrainDeadline{5};

constexpr std::size_t kReadChunk = 64 << 10;
constexpr std::size_t kMaxHttpHead = 16 << 10;
constexpr std::string_view kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

bool FileExists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path, std::ios::binary));
}

}  // namespace

// One poll-loop client: either an ingest feed (framer + protocol) or an
// HTTP probe (request buffer). Output is queued here and flushed
// opportunistically; `dead` marks the slot for reaping at end of tick.
struct IngestServer::Conn {
  Conn(FdHandle f, bool is_http, std::size_t max_line_bytes)
      : fd(std::move(f)), http(is_http), framer(max_line_bytes) {}

  FdHandle fd;
  bool http;
  LineFramer framer;
  std::unique_ptr<IngestProtocol> protocol;  // ingest connections only
  std::string http_in;
  std::chrono::steady_clock::time_point accepted_at{};  // slow-loris clock

  // Records the protocol accepted this tick, paired with their session
  // sequence numbers, awaiting the write-ahead commit (CommitPending).
  std::vector<std::pair<data::AttackRecord, std::uint64_t>> pending;

  std::string out;
  std::size_t out_off = 0;
  bool close_after_flush = false;
  bool session_counted = false;  // resumed-session metric bumped once
  bool dead = false;
  CloseReason reason = CloseReason::kNone;
  data::IngestErrorReport reported;  // reject counts already mirrored to obs
};

IngestServer::IngestServer(NetdConfig config) : config_(std::move(config)) {
  ResolveMetricHandles();
}

IngestServer::~IngestServer() = default;

void IngestServer::ResolveMetricHandles() {
  obs_connections_ = registry_.GetCounter(
      "ddoscope_netd_connections_total", "Connections accepted by ddoscoped");
  obs_active_ = registry_.GetGauge("ddoscope_netd_active_connections",
                                   "Currently open daemon connections");
  obs_bytes_in_ = registry_.GetCounter("ddoscope_netd_bytes_read_total",
                                       "Bytes read from daemon clients");
  obs_bytes_out_ = registry_.GetCounter("ddoscope_netd_bytes_written_total",
                                        "Bytes written to daemon clients");
  obs_records_ = registry_.GetCounter(
      "ddoscope_netd_records_total",
      "Attack records accepted into the engine by the daemon");
  obs_rejected_ = registry_.GetCounter(
      "ddoscope_netd_rejected_rows_total",
      "Rows rejected by the daemon ingest protocol (all kinds)");
  obs_auth_failures_ =
      registry_.GetCounter("ddoscope_netd_auth_failures_total",
                           "Connections closed for missing or bad tokens");
  obs_quota_rejections_ =
      registry_.GetCounter("ddoscope_netd_quota_rejections_total",
                           "Connections closed for exceeding record quotas");
  obs_slow_closes_ = registry_.GetCounter(
      "ddoscope_netd_slow_client_closes_total",
      "Connections closed for exceeding the output byte budget");
  static constexpr std::string_view kEndpoints[4] = {"metrics", "status",
                                                     "healthz", "other"};
  for (std::size_t i = 0; i < obs_http_requests_.size(); ++i) {
    obs_http_requests_[i] = registry_.GetCounter(
        "ddoscope_netd_http_requests_total", "HTTP requests served",
        {{"endpoint", std::string(kEndpoints[i])}});
  }
  obs_checkpoint_seconds_ = registry_.GetHistogram(
      "ddoscope_netd_checkpoint_seconds",
      "Daemon checkpoint write latency (periodic and final)",
      obs::ExponentialBounds(1e-4, 4.0, 10));
  obs_drain_millis_ =
      registry_.GetGauge("ddoscope_netd_drain_millis",
                         "Wall time of the last graceful drain, milliseconds");
  obs_stuck_shards_ = registry_.GetGauge(
      "ddoscope_netd_stuck_shards",
      "Shards with queued work and no progress past the watchdog deadline");
  obs_accept_shed_ = registry_.GetCounter(
      "ddoscope_netd_accept_shed_total",
      "Accepts shed under fd pressure (EMFILE/ENFILE/ENOBUFS)");
  obs_http_timeouts_ = registry_.GetCounter(
      "ddoscope_netd_http_timeouts_total",
      "HTTP connections closed with 408 for a slow request head");
  obs_http_sheds_ = registry_.GetCounter(
      "ddoscope_netd_http_sheds_total",
      "HTTP connections shed at the concurrent-connection cap");
  obs_journal_failures_ = registry_.GetCounter(
      "ddoscope_netd_journal_failures_total",
      "Journal batch appends that failed (records refused, not ACKed)");
  obs_journal_fsync_failures_ = registry_.GetCounter(
      "ddoscope_netd_journal_fsync_failures_total",
      "Journal fsyncs that failed (durability degraded, ingest continues)");
  obs_replayed_ = registry_.GetCounter(
      "ddoscope_netd_replayed_records_total",
      "Journal-tail records replayed into the engine during resume");
  obs_checkpoint_failures_ = registry_.GetCounter(
      "ddoscope_netd_checkpoint_failures_total",
      "Checkpoint writes that failed (retried at the next trigger)");
  obs_resumed_sessions_ = registry_.GetCounter(
      "ddoscope_netd_resumed_sessions_total",
      "RESUME handshakes accepted by the daemon");
  for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
    obs_errors_[static_cast<std::size_t>(k)] = registry_.GetCounter(
        "ddoscope_netd_reject_total", "Rows rejected by error kind",
        {{"kind", std::string(data::IngestErrorKindName(
                      static_cast<data::IngestErrorKind>(k)))}});
  }
}

void IngestServer::Bind() {
  if (bound_) throw std::runtime_error("netd: Bind called twice");

  stream::ShardedStreamEngineConfig sharded;
  sharded.shards = std::max<std::size_t>(1, config_.shards);
  sharded.engine = config_.engine;
  sharded.metrics = &registry_;
  if (!config_.geo_path.empty()) {
    // Map the compiled database once; every shard's enricher walks the
    // same read-only pages. Open() validates checksum and structure, so a
    // corrupt file fails Bind loudly instead of serving wrong lookups.
    geo_ = std::make_unique<geo::GeoMmdb>(geo::GeoMmdb::Open(config_.geo_path));
    sharded.geo = geo_.get();
    sharded.geo_enrich = config_.geo_enrich;
  }

  bool resumed = false;
  if (config_.resume && !config_.checkpoint_path.empty() &&
      FileExists(config_.checkpoint_path)) {
    stream::ShardedCheckpointState state =
        stream::ReadShardedCheckpoint(config_.checkpoint_path);
    // Reconstruct the requested accuracy contract from a section's config;
    // the sections of a multi-shard checkpoint run at half epsilon.
    stream::StreamEngineConfig restored = state.engines.front().config();
    if (state.engines.size() > 1) restored.quantile_epsilon *= 2.0;
    sharded.engine = restored;
    config_.engine = restored;
    engine_ = std::make_unique<stream::ShardedStreamEngine>(sharded);
    engine_->RestoreFrom(state);
    total_accepted_ = state.meta.records;
    accepted_at_checkpoint_ = total_accepted_;
    errors_ = state.meta.errors;
    resumed = true;
  }
  if (engine_ == nullptr) {
    engine_ = std::make_unique<stream::ShardedStreamEngine>(sharded);
  }

  if (!config_.journal_path.empty()) {
    const bool have_journal = FileExists(config_.journal_path);
    if (config_.resume && have_journal) {
      // Crash recovery: the journal is the source of truth. Replay the
      // tail past what the checkpoint (if any) already restored, rebuild
      // the per-session committed counts RESUME answers from, and then
      // keep appending - the journal stays the one complete feed across
      // restarts, which is what the replay-equivalence check consumes.
      const JournalContents contents = ReadJournal(config_.journal_path);
      if (contents.entries.size() < total_accepted_) {
        throw std::runtime_error(StrFormat(
            "netd: journal %s has %zu records but checkpoint claims %llu - "
            "refusing to resume from a truncated journal",
            config_.journal_path.c_str(), contents.entries.size(),
            static_cast<unsigned long long>(total_accepted_)));
      }
      for (std::size_t i = total_accepted_; i < contents.entries.size(); ++i) {
        engine_->Push(contents.entries[i].record);
      }
      replayed_records_ = contents.entries.size() - total_accepted_;
      obs_replayed_->Add(replayed_records_);
      total_accepted_ = contents.entries.size();
      for (const auto& [session, high] : contents.session_high) {
        sessions_.Set(session, high);
      }
      resumed = true;
    }
    journal_ = std::make_unique<Journal>(
        config_.journal_path, /*append_existing=*/resumed && have_journal,
        config_.journal_fsync, config_.journal_fsync_every);
  }

  ingest_listener_ = Listen(config_.host, config_.ingest_port, &ingest_port_);
  http_listener_ = Listen(config_.host, config_.http_port, &http_port_);
  std::tie(wake_rd_, wake_wr_) = MakeWakePipe();
  bound_ = true;
}

void IngestServer::RequestDrain() { RequestDrainFromSignal(); }

void IngestServer::RequestHardStop() noexcept {
  hard_stop_.store(true, std::memory_order_release);
  if (wake_wr_.valid()) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_.get(), &byte, 1);
  }
}

void IngestServer::RequestDrainFromSignal() noexcept {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_wr_.valid()) {
    const char byte = 1;
    // Failure (full pipe) is fine: the loop polls the flag on every tick.
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_.get(), &byte, 1);
  }
}

std::uint64_t IngestServer::Preload(const std::string& path,
                                    const std::string& format) {
  if (!bound_) throw std::runtime_error("netd: Preload called before Bind");
  if (running_) throw std::runtime_error("netd: Preload while running");
  std::uint64_t pushed = 0;
  data::AttackRecord record;
  if (format == "bin") {
    data::BinaryRecordReader reader(path);
    while (reader.Next(&record)) {
      engine_->Push(record);
      ++pushed;
    }
  } else if (format == "csv") {
    data::AttackCsvReader reader(path, data::ParseOptions::Skip());
    while (reader.Next(&record)) {
      engine_->Push(record);
      ++pushed;
    }
    const data::IngestErrorReport& skipped = reader.error_report();
    for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
      errors_.counts[static_cast<std::size_t>(k)] +=
          skipped.counts[static_cast<std::size_t>(k)];
    }
  } else {
    throw std::runtime_error("netd: unknown preload format '" + format + "'");
  }
  preloaded_records_ += pushed;
  return pushed;
}

void IngestServer::Run() {
  if (!bound_) throw std::runtime_error("netd: Run called before Bind");
  running_ = true;
  started_ = Clock::now();

  std::vector<pollfd> pfds;
  for (;;) {
    if (hard_stop_.load(std::memory_order_acquire)) {
      // Simulated kill -9: abandon everything mid-flight. Committed
      // records are already write(2)'d to the journal, which is exactly
      // the state a real SIGKILL leaves behind.
      running_ = false;
      return;
    }
    pfds.clear();
    pfds.push_back({wake_rd_.get(), POLLIN, 0});
    int ingest_idx = -1;
    int http_idx = -1;
    // After an EMFILE-style accept failure the listeners sit out a short
    // cooldown; re-arming them immediately would spin the level-triggered
    // poll at 100% while the fd table is still full.
    if (!draining_ && conns_.size() < config_.max_connections &&
        Clock::now() >= accept_cooldown_until_) {
      ingest_idx = static_cast<int>(pfds.size());
      pfds.push_back({ingest_listener_.get(), POLLIN, 0});
      http_idx = static_cast<int>(pfds.size());
      pfds.push_back({http_listener_.get(), POLLIN, 0});
    }
    const std::size_t conn_base = pfds.size();
    for (const auto& conn : conns_) {
      short events = 0;
      if (!conn->close_after_flush) events |= POLLIN;
      if (conn->out_off < conn->out.size()) events |= POLLOUT;
      pfds.push_back({conn->fd.get(), events, 0});
    }

    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                          draining_ ? 50 : 200);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("netd: poll failed: ") +
                               std::strerror(errno));
    }

    if (pfds[0].revents & POLLIN) {
      char sink[64];
      while (::read(wake_rd_.get(), sink, sizeof sink) > 0) {
      }
    }
    if (!draining_ && drain_requested_.load(std::memory_order_acquire)) {
      BeginDrain();
    }

    if (ingest_idx >= 0 && (pfds[ingest_idx].revents & POLLIN) != 0) {
      AcceptPending(ingest_listener_.get(), /*http=*/false);
    }
    if (http_idx >= 0 && (pfds[http_idx].revents & POLLIN) != 0) {
      AcceptPending(http_listener_.get(), /*http=*/true);
    }

    // Only the conns_ prefix snapshotted into pfds has revents; connections
    // accepted above wait for the next poll round. Index into pfds, not a
    // pointer walk, so handler-side appends to conns_ stay harmless too.
    const std::size_t live = pfds.size() - conn_base;
    for (std::size_t i = 0; i < live; ++i) {
      Conn& conn = *conns_[i];
      const short revents = pfds[conn_base + i].revents;
      if (revents == 0 || conn.dead) continue;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !conn.close_after_flush) {
        conn.http ? HandleHttpRead(conn) : HandleIngestRead(conn);
      }
      if (!conn.dead && (revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
        FlushOutput(conn);
      }
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());
    obs_active_->Set(static_cast<std::int64_t>(conns_.size()));

    const Clock::time_point now = Clock::now();
    RunWatchdog(now);
    ScanHttpDeadlines(now);

    MaybePeriodicCheckpoint();

    if (draining_) {
      if (Clock::now() - drain_started_ > kDrainDeadline) {
        for (auto& conn : conns_) CloseConn(*conn, CloseReason::kDrained);
        conns_.clear();
      }
      if (DrainComplete()) {
        WriteCheckpoint();
        // The journal must be durable and complete after a drain even when
        // checkpointing is off (WriteCheckpoint is a no-op then).
        if (journal_ != nullptr) {
          journal_->Sync();
          journal_.reset();
        }
        obs_drain_millis_->Set(
            static_cast<std::int64_t>(SecondsSince(drain_started_) * 1e3));
        break;
      }
    }
  }
  running_ = false;
}

bool IngestServer::DrainComplete() const { return conns_.empty(); }

void IngestServer::MirrorJournalFsyncFailures() {
  const std::uint64_t failures = journal_->fsync_failures();
  if (failures > journal_fsync_failures_seen_) {
    obs_journal_fsync_failures_->Add(failures - journal_fsync_failures_seen_);
    journal_fsync_failures_seen_ = failures;
  }
}

void IngestServer::RunWatchdog(Clock::time_point now) {
  if (config_.watchdog_interval_ms <= 0 || config_.stuck_after_ms <= 0) return;
  if (now - last_watchdog_ <
      std::chrono::milliseconds(config_.watchdog_interval_ms)) {
    return;
  }
  last_watchdog_ = now;
  const std::vector<std::uint64_t> processed = engine_->ProcessedCounts();
  const std::vector<std::size_t> depths = engine_->QueueDepths();
  if (watchdog_prev_.size() != processed.size()) {
    watchdog_prev_ = processed;
    watchdog_stuck_since_.assign(processed.size(), Clock::time_point{});
    return;  // first sample: nothing to compare against yet
  }
  std::size_t stuck = 0;
  for (std::size_t i = 0; i < processed.size(); ++i) {
    const bool frozen_with_work =
        depths[i] > 0 && processed[i] == watchdog_prev_[i];
    if (!frozen_with_work) {
      watchdog_stuck_since_[i] = Clock::time_point{};
    } else if (watchdog_stuck_since_[i] == Clock::time_point{}) {
      watchdog_stuck_since_[i] = now;
    } else if (now - watchdog_stuck_since_[i] >=
               std::chrono::milliseconds(config_.stuck_after_ms)) {
      ++stuck;
    }
    watchdog_prev_[i] = processed[i];
  }
  stuck_shards_ = stuck;
  obs_stuck_shards_->Set(static_cast<std::int64_t>(stuck));
}

void IngestServer::ScanHttpDeadlines(Clock::time_point now) {
  if (config_.http_header_timeout_ms <= 0) return;
  const auto deadline = std::chrono::milliseconds(config_.http_header_timeout_ms);
  for (auto& conn : conns_) {
    if (!conn->http || conn->dead || conn->close_after_flush) continue;
    if (now - conn->accepted_at <= deadline) continue;
    // Slow loris: the request head never finished arriving. 408 and the
    // door, so held-open sockets cannot pin connection slots.
    obs_http_timeouts_->Add();
    conn->out += BuildHttpResponse(408, "text/plain", "request timeout\n");
    conn->close_after_flush = true;
    conn->reason = CloseReason::kSlowClient;
    FlushOutput(*conn);
  }
}

std::size_t IngestServer::CountHttpConns() const {
  std::size_t n = 0;
  for (const auto& conn : conns_) {
    if (conn->http && !conn->dead) ++n;
  }
  return n;
}

void IngestServer::BeginDrain() {
  draining_ = true;
  drain_started_ = Clock::now();
  for (auto& conn : conns_) {
    if (conn->dead) continue;
    conn->close_after_flush = true;
    if (!conn->http) {
      // Framed lines were already processed after the last read; the
      // unterminated tail stays unacknowledged on purpose - it is exactly
      // the part the client must replay after the restart.
      conn->protocol->OnDrain();
      conn->out += conn->protocol->TakeOutput();
      conn->reason = CloseReason::kDrained;
    }
    FlushOutput(*conn);  // closes immediately when nothing is pending
  }
}

void IngestServer::AcceptPending(int listener_fd, bool http) {
  for (;;) {
    const int fd = common::io_hooks()->Accept(listener_fd);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds: shed instead of dying, and bench the listeners for a
        // beat - the pending connection stays queued and poll would
        // otherwise wake hot on it forever.
        obs_accept_shed_->Add();
        accept_cooldown_until_ = Clock::now() + std::chrono::milliseconds(50);
        break;
      }
      break;  // EAGAIN (drained) or transient accept error: poll again
    }
    if (conns_.size() >= config_.max_connections ||
        (http && CountHttpConns() >= config_.max_http_connections)) {
      if (http) obs_http_sheds_->Add();
      ::close(fd);
      continue;
    }
    try {
      SetNonBlocking(fd);
      if (!http) SetNoDelay(fd);
    } catch (const std::runtime_error&) {
      ::close(fd);
      continue;
    }
    auto conn =
        std::make_unique<Conn>(FdHandle(fd), http, config_.max_line_bytes);
    conn->accepted_at = Clock::now();
    if (!http) {
      conn->protocol = std::make_unique<IngestProtocol>(
          &config_.auth, config_.limits, &sessions_);
    }
    ++connections_seen_;
    obs_connections_->Add();
    conns_.push_back(std::move(conn));
  }
  obs_active_->Set(static_cast<std::int64_t>(conns_.size()));
}

void IngestServer::HandleIngestRead(Conn& conn) {
  char buf[kReadChunk];
  // Bounded reads per poll tick so one fast producer cannot starve the
  // rest of the loop; leftover bytes re-arm POLLIN immediately.
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = common::io_hooks()->Recv(conn.fd.get(), buf, sizeof buf, 0);
    if (n > 0) {
      obs_bytes_in_->Add(static_cast<std::uint64_t>(n));
      conn.framer.Append(buf, static_cast<std::size_t>(n));
      ProcessFrames(conn);
      if (conn.dead || conn.close_after_flush) return;
      if (static_cast<std::size_t>(n) < sizeof buf) return;
      continue;
    }
    if (n == 0) {
      // Peer closed. A newline-less final row is still a complete record if
      // it parses (mirroring AttackCsvReader's final-line tolerance).
      std::string line;
      bool overflow = false;
      if (conn.framer.TakePartial(&line, &overflow)) {
        data::AttackRecord record;
        const IngestProtocol::LineResult r =
            conn.protocol->OnLine(line, overflow, &record);
        if (r.has_record) {
          conn.protocol->OnRecordIngested();
          conn.pending.emplace_back(record, conn.protocol->session_total());
        }
      }
      CommitPending(conn);
      CloseConn(conn, conn.protocol->close_reason() == CloseReason::kNone
                          ? CloseReason::kEndOfFeed
                          : conn.protocol->close_reason());
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CommitPending(conn);
    CloseConn(conn, CloseReason::kProtocolError);
    return;
  }
}

void IngestServer::ProcessFrames(Conn& conn) {
  std::string line;
  bool overflow = false;
  data::AttackRecord record;
  while (conn.framer.Next(&line, &overflow)) {
    const IngestProtocol::LineResult r =
        conn.protocol->OnLine(line, overflow, &record);
    if (r.has_record) {
      // Accounting (ACK/PONG numbers) is immediate, but the journal/engine
      // commit is deferred to CommitPending below - which runs before any
      // of this output flushes, so the ACKs never outrun the journal.
      conn.protocol->OnRecordIngested();
      conn.pending.emplace_back(record, conn.protocol->session_total());
    }
    if (r.close && !conn.close_after_flush) {
      conn.close_after_flush = true;
      conn.reason = conn.protocol->close_reason();
      if (conn.reason == CloseReason::kAuthFailure) {
        obs_auth_failures_->Add();
      } else if (conn.reason == CloseReason::kQuotaExceeded) {
        obs_quota_rejections_->Add();
      }
      // Keep draining the framer: the protocol is closing and discards the
      // remaining lines, which empties the buffered backlog cheaply.
    }
  }
  if (!conn.session_counted && !conn.protocol->session_id().empty()) {
    conn.session_counted = true;
    obs_resumed_sessions_->Add();
  }
  CommitPending(conn);
  SyncRejectCounters(conn);
  if (conn.protocol->has_output()) conn.out += conn.protocol->TakeOutput();
  if (conn.out_off < conn.out.size()) FlushOutput(conn);
  if (!conn.dead &&
      conn.out.size() - conn.out_off > config_.max_output_buffer) {
    obs_slow_closes_->Add();
    CloseConn(conn, CloseReason::kSlowClient);
  }
}

void IngestServer::CommitPending(Conn& conn) {
  if (conn.pending.empty()) return;
  const std::string session =
      conn.protocol != nullptr ? conn.protocol->session_id() : std::string();
  if (journal_ != nullptr) {
    if (!journal_->AppendBatch(session, conn.pending)) {
      // The write-ahead append failed (ENOSPC/EIO): these records are NOT
      // committed. Drop them before the engine sees them, retract every
      // reply referencing them, and tell the client to replay against a
      // healthy server - its unacked window holds exactly this batch.
      obs_journal_failures_->Add();
      conn.pending.clear();
      if (conn.protocol != nullptr) (void)conn.protocol->TakeOutput();
      conn.out += "ERR journal-failed\n";
      conn.close_after_flush = true;
      conn.reason = CloseReason::kJournalFailure;
      return;
    }
    MirrorJournalFsyncFailures();
  }
  for (const auto& [record, seq] : conn.pending) {
    engine_->Push(record);
  }
  total_accepted_ += conn.pending.size();
  obs_records_->Add(conn.pending.size());
  if (!session.empty()) {
    sessions_.Set(session, conn.pending.back().second);
  }
  conn.pending.clear();
}

void IngestServer::SyncRejectCounters(Conn& conn) {
  const auto& now = conn.protocol->errors().counts;
  for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
    const auto i = static_cast<std::size_t>(k);
    const std::uint64_t delta = now[i] - conn.reported.counts[i];
    if (delta != 0) {
      obs_errors_[i]->Add(delta);
      obs_rejected_->Add(delta);
      conn.reported.counts[i] = now[i];
    }
  }
}

void IngestServer::HandleHttpRead(Conn& conn) {
  char buf[8192];
  for (;;) {
    const ssize_t n = common::io_hooks()->Recv(conn.fd.get(), buf, sizeof buf, 0);
    if (n > 0) {
      obs_bytes_in_->Add(static_cast<std::uint64_t>(n));
      conn.http_in.append(buf, static_cast<std::size_t>(n));
      std::size_t head_bytes = 0;
      if (HttpHeadComplete(conn.http_in, &head_bytes)) {
        conn.out += RouteHttp(conn.http_in.substr(0, head_bytes));
        conn.close_after_flush = true;
        conn.reason = CloseReason::kEndOfFeed;
        FlushOutput(conn);
        return;
      }
      if (conn.http_in.size() > kMaxHttpHead) {
        conn.out +=
            BuildHttpResponse(400, "text/plain", "request head too large\n");
        conn.close_after_flush = true;
        FlushOutput(conn);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return;
      continue;
    }
    if (n == 0) {
      CloseConn(conn, CloseReason::kEndOfFeed);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn, CloseReason::kProtocolError);
    return;
  }
}

std::string IngestServer::RouteHttp(const std::string& head) {
  HttpRequest req;
  std::string error;
  if (!ParseHttpRequest(head, &req, &error)) {
    obs_http_requests_[3]->Add();
    return BuildHttpResponse(400, "text/plain", error + "\n");
  }
  std::string target = req.target.substr(0, req.target.find('?'));
  const int endpoint = target == "/metrics"   ? 0
                       : target == "/status"  ? 1
                       : target == "/healthz" ? 2
                                              : 3;
  obs_http_requests_[static_cast<std::size_t>(endpoint)]->Add();
  if (req.method != "GET") {
    return BuildHttpResponse(405, "text/plain", "method not allowed\n");
  }
  switch (endpoint) {
    case 0:
      // Refresh the aggregate geo gauges at scrape cadence. We are the
      // router thread, so the snapshot barrier is legal here (same
      // reasoning as BuildStatusJson).
      if (geo_ != nullptr) {
        const stream::StreamSnapshot snap = engine_->Snapshot(5);
        if (snap.geo.has_value()) {
          stream::PublishGeoGauges(&registry_, *snap.geo);
        }
      }
      return BuildHttpResponse(200, kMetricsContentType,
                               obs::RenderPrometheusText(registry_.Snapshot()));
    case 1:
      return BuildHttpResponse(200, "application/json", BuildStatusJson());
    case 2:
      if (draining_) return BuildHttpResponse(503, "text/plain", "draining\n");
      if (stuck_shards_ > 0) {
        return BuildHttpResponse(
            503, "text/plain",
            StrFormat("degraded: %zu stuck shards\n", stuck_shards_));
      }
      return BuildHttpResponse(200, "text/plain", "ok\n");
    default:
      return BuildHttpResponse(404, "text/plain", "not found\n");
  }
}

std::string IngestServer::BuildStatusJson() {
  // Snapshot takes the shard barrier; we are the router thread, so this is
  // the one place it is legal - and it is bounded by the in-flight batch.
  const stream::StreamSnapshot snap = engine_->Snapshot(5);
  const std::vector<std::size_t> depths = engine_->QueueDepths();

  std::string j = "{";
  j += StrFormat("\"draining\":%s", draining_ ? "true" : "false");
  j += StrFormat(",\"uptime_seconds\":%.3f", SecondsSince(started_));
  j += StrFormat(",\"accepted_records\":%llu",
                 static_cast<unsigned long long>(total_accepted_));
  j += StrFormat(",\"rejected_rows\":%llu",
                 static_cast<unsigned long long>(AggregateErrors().total()));
  j += StrFormat(",\"connections\":{\"active\":%zu,\"total\":%llu}",
                 conns_.size(),
                 static_cast<unsigned long long>(connections_seen_));
  j += StrFormat(",\"stuck_shards\":%zu", stuck_shards_);
  j += StrFormat(",\"sessions\":%zu", sessions_.size());

  j += ",\"clients\":[";
  bool first = true;
  for (const auto& conn : conns_) {
    if (conn->http || conn->dead) continue;
    if (!first) j += ',';
    first = false;
    j += "{\"name\":";
    AppendJsonString(&j, conn->protocol->client_name());
    j += StrFormat(",\"state\":\"%s\",\"records\":%llu,\"rejected\":%llu}",
                   conn->protocol->state() == ConnState::kAwaitAuth
                       ? "await-auth"
                       : conn->protocol->state() == ConnState::kStreaming
                             ? "streaming"
                             : "closing",
                   static_cast<unsigned long long>(conn->protocol->records()),
                   static_cast<unsigned long long>(conn->protocol->rejected()));
  }
  j += ']';

  j += StrFormat(",\"shards\":{\"count\":%zu,\"queue_depths\":[",
                 engine_->shard_count());
  for (std::size_t i = 0; i < depths.size(); ++i) {
    if (i != 0) j += ',';
    j += StrFormat("%zu", depths[i]);
  }
  j += "]}";

  j += StrFormat(
      ",\"engine\":{\"attacks\":%llu,\"countries\":%llu,"
      "\"distinct_targets\":%.1f,\"distinct_botnets\":%.1f,"
      "\"attacks_in_window\":%llu,\"collab_events\":%llu,"
      "\"memory_bytes\":%zu",
      static_cast<unsigned long long>(snap.attacks),
      static_cast<unsigned long long>(snap.countries), snap.distinct_targets,
      snap.distinct_botnets,
      static_cast<unsigned long long>(snap.attacks_in_window),
      static_cast<unsigned long long>(snap.collab.events),
      snap.engine_memory_bytes);
  j += ",\"families\":[";
  first = true;
  for (int f = 0; f < data::kFamilyCount; ++f) {
    const std::uint64_t n = snap.family_attacks[static_cast<std::size_t>(f)];
    if (n == 0) continue;
    if (!first) j += ',';
    first = false;
    j += "{\"family\":";
    AppendJsonString(&j, data::FamilyName(static_cast<data::Family>(f)));
    j += StrFormat(",\"attacks\":%llu}", static_cast<unsigned long long>(n));
  }
  j += "]}";

  if (snap.geo.has_value()) {
    const stream::GeoEnrichSnapshot& geo = *snap.geo;
    // Status cadence doubles as the gauge-publication cadence: one writer
    // (this thread), off the ingest path.
    stream::PublishGeoGauges(&registry_, geo);
    j += StrFormat(
        ",\"geo\":{\"enriched\":%llu,\"out_of_space\":%llu,"
        "\"tracked_botnets\":%zu,\"dropped_botnets\":%llu",
        static_cast<unsigned long long>(geo.enriched),
        static_cast<unsigned long long>(geo.out_of_space), geo.tracked_botnets,
        static_cast<unsigned long long>(geo.dropped_botnets));
    j += ",\"top_countries\":[";
    first = true;
    for (const stream::GeoTopEntry& e : geo.top_countries) {
      if (!first) j += ',';
      first = false;
      j += "{\"cc\":";
      AppendJsonString(&j, e.label);
      j += StrFormat(",\"attacks\":%llu}",
                     static_cast<unsigned long long>(e.count));
    }
    j += "],\"top_asns\":[";
    first = true;
    for (const stream::GeoTopEntry& e : geo.top_asns) {
      if (!first) j += ',';
      first = false;
      j += "{\"asn\":";
      AppendJsonString(&j, e.label);
      j += StrFormat(",\"attacks\":%llu}",
                     static_cast<unsigned long long>(e.count));
    }
    j += "],\"top_dispersed\":[";
    first = true;
    for (const stream::BotnetGeoStat& b : geo.top_dispersed) {
      if (!first) j += ',';
      first = false;
      j += StrFormat(
          "{\"botnet\":%u,\"attacks\":%llu,\"mean_distance_km\":%.1f}",
          b.botnet_id, static_cast<unsigned long long>(b.attacks),
          b.mean_distance_km);
    }
    j += "]}";
  }

  j += '}';
  return j;
}

void IngestServer::FlushOutput(Conn& conn) {
  if (conn.dead) return;
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = common::io_hooks()->Send(
        conn.fd.get(), conn.out.data() + conn.out_off,
        conn.out.size() - conn.out_off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      obs_bytes_out_->Add(static_cast<std::uint64_t>(n));
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer vanished (EPIPE/ECONNRESET under MSG_NOSIGNAL) or hard error.
    CloseConn(conn, conn.reason != CloseReason::kNone
                        ? conn.reason
                        : CloseReason::kProtocolError);
    return;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) CloseConn(conn, conn.reason);
  } else if (conn.out_off > kReadChunk) {
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
}

void IngestServer::CloseConn(Conn& conn, CloseReason reason) {
  if (conn.dead) return;
  if (!conn.http && conn.protocol != nullptr) {
    if (!conn.protocol->session_id().empty()) {
      // Free the session for the client's next connection to reclaim.
      sessions_.Release(conn.protocol->session_id());
    }
    SyncRejectCounters(conn);
    for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
      const auto i = static_cast<std::size_t>(k);
      errors_.counts[i] += conn.protocol->errors().counts[i];
    }
  }
  conn.reason = reason;
  conn.fd.Reset();
  conn.dead = true;
}

data::IngestErrorReport IngestServer::AggregateErrors() const {
  data::IngestErrorReport report = errors_;
  for (const auto& conn : conns_) {
    if (conn->http || conn->dead || conn->protocol == nullptr) continue;
    for (int k = 0; k < data::kIngestErrorKindCount; ++k) {
      const auto i = static_cast<std::size_t>(k);
      report.counts[i] += conn->protocol->errors().counts[i];
    }
  }
  return report;
}

void IngestServer::WriteCheckpoint() {
  if (config_.checkpoint_path.empty()) return;
  // Journal first: the checkpoint claims N accepted records, and the
  // durable journal must always cover at least that many.
  if (journal_ != nullptr) {
    journal_->Sync();
    MirrorJournalFsyncFailures();
  }
  if (const int err =
          common::io_hooks()->PrepareFileWrite(config_.checkpoint_path.c_str());
      err != 0) {
    // Simulated disk-full: skip this checkpoint. accepted_at_checkpoint_
    // stays put, so the next trigger retries; the journal still covers
    // everything, so recovery is unaffected.
    obs_checkpoint_failures_->Add();
    return;
  }
  stream::CheckpointMeta meta;
  meta.records = total_accepted_;
  meta.source_line = 0;  // the daemon has no single source file position
  meta.errors = AggregateErrors();
  const Clock::time_point t0 = Clock::now();
  try {
    engine_->SaveCheckpoint(config_.checkpoint_path, meta);
  } catch (const std::runtime_error&) {
    obs_checkpoint_failures_->Add();
    return;
  }
  obs_checkpoint_seconds_->Observe(SecondsSince(t0));
  accepted_at_checkpoint_ = total_accepted_;
}

void IngestServer::MaybePeriodicCheckpoint() {
  if (config_.checkpoint_path.empty() || config_.checkpoint_every == 0) return;
  if (total_accepted_ - accepted_at_checkpoint_ < config_.checkpoint_every) {
    return;
  }
  WriteCheckpoint();
}

stream::StreamSnapshot IngestServer::FinishAndSnapshot() {
  if (running_) throw std::runtime_error("netd: FinishAndSnapshot while running");
  if (engine_ == nullptr) throw std::runtime_error("netd: not bound");
  if (!finished_) {
    engine_->Finish();
    finished_ = true;
  }
  return engine_->merged().Snapshot();
}

}  // namespace ddos::netd
