// The per-connection ingest protocol state machine.
//
// One ddoscoped ingest connection speaks a line protocol over TCP:
//
//   client                                server
//   ------                                ------
//   AUTH <token>                          OK <name>            (or ERR ... + close)
//   RESUME <client-id> <last-acked-seq>   OK RESUME <have>     (optional)
//   <attack CSV row>                      -
//   <attack CSV row>                      ACK <n>              (every ack_every rows)
//   PING                                  PONG <n>
//   <attack CSV row>                      -
//   END                                   ACK <n> end  + close
//
// RESUME binds the connection to a named session whose committed record
// count survives reconnects (and, via the journal, server restarts). The
// server answers with its committed count `have` for that session; the
// client drops everything it sent at-or-below `have` and resends the rest,
// which makes reconnect exactly-once: nothing the server already committed
// is ever pushed twice, and nothing unacked is lost. After a RESUME every
// number the server speaks (ACK/PONG) is session-cumulative, not
// per-connection. A session can be held by only one live connection
// (`ERR session-busy` - retryable, since a dead predecessor releases it
// when the server reaps the socket).
//
// The AUTH exchange is required only when the server has tokens configured;
// with an empty AuthTable a client streams rows immediately (the `nc`
// path). Rows are the Table-I attack CSV schema, one record per line; a
// header line is recognized and skipped so `ddoscope feed` can replay a
// saved trace verbatim. Malformed rows are counted per IngestErrorKind and
// dropped (the daemon equivalent of `--on-error skip`); they never kill the
// connection. Exceeding the client's record quota, failing auth, or
// breaking the protocol does: the server sends a final `ERR <reason>` line
// and closes. On graceful drain the server sends `ACK <n> drain`, so the
// client's durable high-water mark is always the last ACK it saw - the
// records after it are the unacked tail to replay after a restart.
//
// IngestProtocol is pure state machine: complete lines in, replies and
// parsed records out. Sockets, polling, and the engine live in
// netd/server.cpp; tests drive this class directly with strings.
#ifndef DDOSCOPE_NETD_CONNECTION_H_
#define DDOSCOPE_NETD_CONNECTION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "data/ingest_error.h"
#include "data/records.h"
#include "netd/auth.h"

namespace ddos::netd {

// Committed record counts per named session, plus which sessions are
// currently bound to a live connection. Owned and touched only by the
// server's router thread (same single-thread contract as the engine
// router), so it needs no locking.
class SessionTable {
 public:
  std::uint64_t Get(const std::string& id) const {
    const auto it = counts_.find(id);
    return it == counts_.end() ? 0 : it->second;
  }
  void Set(const std::string& id, std::uint64_t committed) {
    counts_[id] = committed;
  }
  // Binds `id` to a connection; false when another live connection holds it.
  bool Acquire(const std::string& id) { return active_.insert(id).second; }
  void Release(const std::string& id) { active_.erase(id); }
  std::size_t size() const { return counts_.size(); }

 private:
  std::unordered_map<std::string, std::uint64_t> counts_;
  std::unordered_set<std::string> active_;
};

enum class ConnState : std::uint8_t {
  kAwaitAuth,   // waiting for the AUTH line
  kStreaming,   // accepting records
  kClosing,     // terminal reply queued; close after it flushes
};

enum class CloseReason : std::uint8_t {
  kNone = 0,
  kEndOfFeed,      // client sent END
  kAuthFailure,    // unknown token or missing AUTH
  kQuotaExceeded,  // per-client record quota hit
  kProtocolError,  // e.g. AUTH mid-stream
  kDrained,        // server-side graceful drain
  kSlowClient,     // pending replies exceeded the output byte budget
  kJournalFailure, // write-ahead journal append failed; records not committed
};

std::string_view CloseReasonName(CloseReason reason);

struct IngestLimits {
  std::uint64_t ack_every = 1024;          // rows between periodic ACKs
  std::uint64_t default_max_records = 0;   // quota for unauthenticated feeds
  bool detect_duplicate_ids = true;        // per-connection ddos_id dedupe
};

class IngestProtocol {
 public:
  struct LineResult {
    bool has_record = false;  // *record is valid; the caller must ingest it
                              // and then call OnRecordIngested()
    bool close = false;       // close after flushing TakeOutput()
  };

  // `auth` may be null or empty (authentication disabled); `sessions` may
  // be null (RESUME rejected as a protocol error). Both must outlive the
  // protocol object.
  IngestProtocol(const AuthTable* auth, const IngestLimits& limits,
                 SessionTable* sessions = nullptr);

  // Consumes one complete line (terminator already stripped). `overflow`
  // marks a line the framer truncated (counted as kTruncatedLine).
  LineResult OnLine(const std::string& line, bool overflow,
                    data::AttackRecord* record);

  // Acknowledges that the record returned by the last OnLine call was
  // pushed into the engine; queues a periodic ACK when one is due.
  void OnRecordIngested();

  // Graceful server-side drain: queues the final `ACK <n> drain` and moves
  // to kClosing.
  void OnDrain();

  // Protocol bytes waiting for the client; the caller owns flushing them.
  std::string TakeOutput() { return std::move(output_); }
  bool has_output() const { return !output_.empty(); }

  ConnState state() const { return state_; }
  CloseReason close_reason() const { return close_reason_; }
  const std::string& client_name() const { return client_name_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t rejected() const { return rejected_; }
  const data::IngestErrorReport& errors() const { return errors_; }

  // "" until a RESUME succeeded on this connection.
  const std::string& session_id() const { return session_id_; }
  // Session-cumulative count: the base committed before this connection
  // plus rows accepted on it. Equals records() for sessionless feeds.
  std::uint64_t session_total() const { return session_base_ + records_; }

 private:
  void Reject(data::IngestErrorKind kind);
  void CloseWith(CloseReason reason, const std::string& err_line);
  LineResult HandleResume(const std::string& line);

  const AuthTable* auth_;
  IngestLimits limits_;
  SessionTable* sessions_;
  ConnState state_;
  CloseReason close_reason_ = CloseReason::kNone;
  std::string client_name_ = "anonymous";
  std::string session_id_;
  std::uint64_t session_base_ = 0;  // committed before this connection
  std::uint64_t max_records_ = 0;  // resolved quota; 0 = unlimited
  std::uint64_t records_ = 0;      // accepted (ingested) rows
  std::uint64_t rejected_ = 0;     // malformed / duplicate rows dropped
  data::IngestErrorReport errors_;
  std::unordered_set<std::uint64_t> seen_ids_;
  std::string output_;
};

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_CONNECTION_H_
