// The per-connection ingest protocol state machine.
//
// One ddoscoped ingest connection speaks a line protocol over TCP:
//
//   client                                server
//   ------                                ------
//   AUTH <token>                          OK <name>            (or ERR ... + close)
//   <attack CSV row>                      -
//   <attack CSV row>                      ACK <n>              (every ack_every rows)
//   PING                                  PONG <n>
//   <attack CSV row>                      -
//   END                                   ACK <n> end  + close
//
// The AUTH exchange is required only when the server has tokens configured;
// with an empty AuthTable a client streams rows immediately (the `nc`
// path). Rows are the Table-I attack CSV schema, one record per line; a
// header line is recognized and skipped so `ddoscope feed` can replay a
// saved trace verbatim. Malformed rows are counted per IngestErrorKind and
// dropped (the daemon equivalent of `--on-error skip`); they never kill the
// connection. Exceeding the client's record quota, failing auth, or
// breaking the protocol does: the server sends a final `ERR <reason>` line
// and closes. On graceful drain the server sends `ACK <n> drain`, so the
// client's durable high-water mark is always the last ACK it saw - the
// records after it are the unacked tail to replay after a restart.
//
// IngestProtocol is pure state machine: complete lines in, replies and
// parsed records out. Sockets, polling, and the engine live in
// netd/server.cpp; tests drive this class directly with strings.
#ifndef DDOSCOPE_NETD_CONNECTION_H_
#define DDOSCOPE_NETD_CONNECTION_H_

#include <cstdint>
#include <string>
#include <unordered_set>

#include "data/ingest_error.h"
#include "data/records.h"
#include "netd/auth.h"

namespace ddos::netd {

enum class ConnState : std::uint8_t {
  kAwaitAuth,   // waiting for the AUTH line
  kStreaming,   // accepting records
  kClosing,     // terminal reply queued; close after it flushes
};

enum class CloseReason : std::uint8_t {
  kNone = 0,
  kEndOfFeed,      // client sent END
  kAuthFailure,    // unknown token or missing AUTH
  kQuotaExceeded,  // per-client record quota hit
  kProtocolError,  // e.g. AUTH mid-stream
  kDrained,        // server-side graceful drain
  kSlowClient,     // pending replies exceeded the output byte budget
};

std::string_view CloseReasonName(CloseReason reason);

struct IngestLimits {
  std::uint64_t ack_every = 1024;          // rows between periodic ACKs
  std::uint64_t default_max_records = 0;   // quota for unauthenticated feeds
  bool detect_duplicate_ids = true;        // per-connection ddos_id dedupe
};

class IngestProtocol {
 public:
  struct LineResult {
    bool has_record = false;  // *record is valid; the caller must ingest it
                              // and then call OnRecordIngested()
    bool close = false;       // close after flushing TakeOutput()
  };

  // `auth` may be null or empty (authentication disabled); otherwise it
  // must outlive the protocol object.
  IngestProtocol(const AuthTable* auth, const IngestLimits& limits);

  // Consumes one complete line (terminator already stripped). `overflow`
  // marks a line the framer truncated (counted as kTruncatedLine).
  LineResult OnLine(const std::string& line, bool overflow,
                    data::AttackRecord* record);

  // Acknowledges that the record returned by the last OnLine call was
  // pushed into the engine; queues a periodic ACK when one is due.
  void OnRecordIngested();

  // Graceful server-side drain: queues the final `ACK <n> drain` and moves
  // to kClosing.
  void OnDrain();

  // Protocol bytes waiting for the client; the caller owns flushing them.
  std::string TakeOutput() { return std::move(output_); }
  bool has_output() const { return !output_.empty(); }

  ConnState state() const { return state_; }
  CloseReason close_reason() const { return close_reason_; }
  const std::string& client_name() const { return client_name_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t rejected() const { return rejected_; }
  const data::IngestErrorReport& errors() const { return errors_; }

 private:
  void Reject(data::IngestErrorKind kind);
  void CloseWith(CloseReason reason, const std::string& err_line);

  const AuthTable* auth_;
  IngestLimits limits_;
  ConnState state_;
  CloseReason close_reason_ = CloseReason::kNone;
  std::string client_name_ = "anonymous";
  std::uint64_t max_records_ = 0;  // resolved quota; 0 = unlimited
  std::uint64_t records_ = 0;      // accepted (ingested) rows
  std::uint64_t rejected_ = 0;     // malformed / duplicate rows dropped
  data::IngestErrorReport errors_;
  std::unordered_set<std::uint64_t> seen_ids_;
  std::string output_;
};

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_CONNECTION_H_
