#include "netd/socket.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

#include "common/iohooks.h"
#include "common/strings.h"

namespace ddos::netd {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in MakeAddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("netd: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

void FdHandle::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

FdHandle Listen(const std::string& host, std::uint16_t port,
                std::uint16_t* bound_port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) ThrowErrno("netd: socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    ThrowErrno("netd: SO_REUSEADDR");
  }
  sockaddr_in addr = MakeAddr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ThrowErrno(StrFormat("netd: bind %s:%u", host.c_str(), port));
  }
  if (::listen(fd.get(), 64) != 0) ThrowErrno("netd: listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      ThrowErrno("netd: getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  SetNonBlocking(fd.get());
  return fd;
}

FdHandle Connect(const std::string& host, std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) ThrowErrno("netd: socket");
  sockaddr_in addr = MakeAddr(host, port);
  if (common::io_hooks()->Connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                                  sizeof(addr)) != 0) {
    ThrowErrno(StrFormat("netd: connect %s:%u", host.c_str(), port));
  }
  SetNoDelay(fd.get());
  return fd;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("netd: O_NONBLOCK");
  }
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    ThrowErrno("netd: SO_RCVTIMEO");
  }
}

void SetNoDelay(int fd) {
  const int one = 1;
  // Best effort: latency tuning, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::pair<FdHandle, FdHandle> MakeWakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) ThrowErrno("netd: pipe");
  FdHandle rd(fds[0]), wr(fds[1]);
  SetNonBlocking(rd.get());
  SetNonBlocking(wr.get());
  return {std::move(rd), std::move(wr)};
}

}  // namespace ddos::netd
