// FeedClient: a blocking client for the ddoscoped ingest protocol, plus a
// one-shot HTTP GET helper for the scrape surface.
//
// This is the reference implementation of the client side of the protocol
// in netd/connection.h, used by `ddoscope feed`, the loopback e2e tests,
// and the netd benchmark. It is deliberately simple - blocking connect and
// sends, one socket per feed - with two pieces of protocol awareness:
//
//  * every send first drains any replies the server has already queued
//    (non-blocking recv), so a long feed never deadlocks against the
//    server's bounded output buffer, and the client always knows its
//    durable high-water mark (`last_acked`);
//  * a send failure (EPIPE/ECONNRESET under MSG_NOSIGNAL) marks the
//    connection server-closed instead of throwing, because the protocol
//    ends quota and drain conversations by closing - the caller then reads
//    the final `ERR`/`ACK` verdict from the reply tail.
#ifndef DDOSCOPE_NETD_CLIENT_H_
#define DDOSCOPE_NETD_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "data/records.h"
#include "netd/socket.h"

namespace ddos::netd {

// Serializes one record as a protocol line (attack CSV row + '\n').
std::string FormatAttackLine(const data::AttackRecord& record);

class FeedClient {
 public:
  struct Options {
    int recv_timeout_ms = 10000;  // blocking-read cap (tests must not hang)
  };

  // Connects immediately; throws std::runtime_error on failure.
  FeedClient(const std::string& host, std::uint16_t port);
  FeedClient(const std::string& host, std::uint16_t port,
             const Options& options);

  // AUTH handshake; returns the server's `OK <name>` line. Throws on an
  // ERR reply or a closed connection.
  std::string Auth(const std::string& token);

  // RESUME handshake: binds this connection to the named session and
  // returns the server's committed record count for it. Must run before
  // any data is sent. Throws on an ERR reply (message contains the ERR
  // line verbatim, e.g. "ERR session-busy") or a closed connection.
  std::uint64_t Resume(const std::string& client_id,
                       std::uint64_t last_acked_seq);

  // Sends one protocol line ('\n' appended unless already present). Does
  // not throw when the server has closed; check closed_by_server().
  void SendLine(std::string_view line);
  void SendRecord(const data::AttackRecord& record);

  // Blocking read of the next reply line ("" when the server closed).
  // Throws std::runtime_error on timeout. ACK/ERR replies update
  // last_acked()/last_error() as a side effect.
  std::string ReadLine();

  // PING round trip; returns the server's accepted count. Interleaved ACKs
  // are consumed along the way.
  std::uint64_t Ping();

  // Sends END and reads to the final `ACK <n> end` (or the server's ERR /
  // EOF verdict); returns the highest acknowledged count seen.
  std::uint64_t End();

  std::uint64_t last_acked() const { return last_acked_; }
  // True once a terminal `ACK <n> end` / `ACK <n> drain` was seen - the
  // server delivered its verdict, as opposed to the connection dying first.
  bool saw_final_ack() const { return saw_final_ack_; }
  bool closed_by_server() const { return server_closed_; }
  // The last `ERR ...` line received, verbatim ("" when none).
  const std::string& last_error() const { return last_error_; }

  void Close() { fd_.Reset(); }

 private:
  void DrainPendingReplies();  // non-blocking
  void HandleReply(const std::string& line);

  FdHandle fd_;
  std::string inbuf_;  // bytes read but not yet split into reply lines
  std::uint64_t last_acked_ = 0;
  bool saw_final_ack_ = false;
  bool server_closed_ = false;
  std::string last_error_;
};

// Minimal blocking HTTP/1.1 GET against the daemon's scrape port; returns
// the response body and (optionally) the status code. Throws
// std::runtime_error on connect failure or a malformed response.
std::string HttpGet(const std::string& host, std::uint16_t port,
                    const std::string& target, int* status_out = nullptr);

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_CLIENT_H_
