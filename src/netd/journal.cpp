#include "netd/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/iohooks.h"
#include "common/strings.h"
#include "data/csv.h"

namespace ddos::netd {

namespace {

constexpr std::string_view kJournalHeader = "#ddoscoped-journal v2";

}  // namespace

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kOff: return "off";
  }
  return "unknown";
}

std::optional<FsyncPolicy> ParseFsyncPolicy(std::string_view text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "off") return FsyncPolicy::kOff;
  return std::nullopt;
}

Journal::Journal(const std::string& path, bool append_existing,
                 FsyncPolicy policy, std::uint64_t fsync_every)
    : policy_(policy), fsync_every_(fsync_every == 0 ? 1 : fsync_every) {
  int flags = O_WRONLY | O_CREAT;
  if (!append_existing) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("netd: cannot open journal " + path + ": " +
                             std::strerror(errno));
  }
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  cur_size_ = end > 0 ? static_cast<std::uint64_t>(end) : 0;
  if (cur_size_ == 0) {
    // Fresh file: the header travels outside AppendBatch accounting, but
    // uses the same all-or-nothing discipline.
    std::string header(kJournalHeader);
    header.push_back('\n');
    if (!WriteAll(header.data(), header.size())) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("netd: cannot write journal header to " + path);
    }
    cur_size_ = header.size();
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

bool Journal::WriteAll(const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = common::io_hooks()->Write(fd_, data + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // ENOSPC/EIO/...: caller undoes the partial batch
  }
  return true;
}

bool Journal::AppendBatch(
    const std::string& session_id,
    const std::vector<std::pair<data::AttackRecord, std::uint64_t>>& records) {
  if (fd_ < 0 || records.empty()) return fd_ >= 0;
  std::ostringstream buf;
  for (const auto& [record, seq] : records) {
    buf << (session_id.empty() ? "-" : session_id) << '\t' << seq << '\t';
    data::WriteAttackCsvRow(buf, record);
  }
  const std::string bytes = buf.str();
  if (!WriteAll(bytes.data(), bytes.size())) {
    ++append_failures_;
    // All-or-nothing: truncate back to the committed size so the file
    // stays record-aligned and replay order equals push order. The undo
    // uses the raw syscall - injected faults must not break the undo.
    [[maybe_unused]] const int rc =
        ::ftruncate(fd_, static_cast<off_t>(cur_size_));
    ::lseek(fd_, static_cast<off_t>(cur_size_), SEEK_SET);
    return false;
  }
  cur_size_ += bytes.size();
  bytes_written_ += bytes.size();
  records_appended_ += records.size();
  records_since_sync_ += records.size();
  MaybePolicySync();
  return true;
}

void Journal::MaybePolicySync() {
  if (policy_ == FsyncPolicy::kOff) return;
  if (policy_ == FsyncPolicy::kInterval &&
      records_since_sync_ < fsync_every_) {
    return;
  }
  Sync();
}

bool Journal::Sync() {
  if (fd_ < 0) return false;
  records_since_sync_ = 0;
  ++fsyncs_;
  for (;;) {
    if (common::io_hooks()->Fsync(fd_) == 0) return true;
    if (errno == EINTR) continue;
    // EIO here means the data may not be durable against a machine crash;
    // the journal<->engine ordering is unaffected, so ingest continues and
    // the failure is surfaced through counters/health instead of undoing
    // records that are already in the engine.
    ++fsync_failures_;
    return false;
  }
}

JournalContents ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("netd: cannot read journal " + path);
  }
  JournalContents contents;
  std::string line;
  bool first = true;
  bool v2 = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first) {
      first = false;
      if (line == kJournalHeader) {
        v2 = true;
        continue;
      }
      // v1: bare attack CSV; tolerate (and skip) its header line.
      if (line.rfind("ddos_id,", 0) == 0) continue;
    }
    if (line.empty()) continue;
    JournalEntry entry;
    std::string row;
    if (v2) {
      const std::size_t t1 = line.find('\t');
      const std::size_t t2 =
          t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
      if (t2 == std::string::npos) {
        contents.torn_tail = true;
        continue;  // a line the crash tore; later lines cannot exist
      }
      const std::string sid = line.substr(0, t1);
      const auto seq = ParseInt64(line.substr(t1 + 1, t2 - t1 - 1));
      if (!seq.has_value() || *seq < 0) {
        contents.torn_tail = true;
        continue;
      }
      entry.session = sid == "-" ? std::string() : sid;
      entry.seq = static_cast<std::uint64_t>(*seq);
      row = line.substr(t2 + 1);
    } else {
      row = line;
    }
    data::IngestError err;
    if (!data::TryParseAttackLine(row, &entry.record, &err)) {
      contents.torn_tail = true;
      continue;
    }
    if (!entry.session.empty()) {
      auto& high = contents.session_high[entry.session];
      if (entry.seq > high) high = entry.seq;
    }
    contents.entries.push_back(std::move(entry));
  }
  return contents;
}

}  // namespace ddos::netd
