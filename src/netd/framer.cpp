#include "netd/framer.h"

#include <algorithm>
#include <cstring>

namespace ddos::netd {

void LineFramer::FinishLine() {
  if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
  ready_.push_back({std::move(partial_), discarding_});
  partial_.clear();
  discarding_ = false;
}

void LineFramer::Append(const char* data, std::size_t n) {
  const char* end = data + n;
  while (data < end) {
    const char* nl = static_cast<const char*>(
        std::memchr(data, '\n', static_cast<std::size_t>(end - data)));
    const char* chunk_end = nl != nullptr ? nl : end;
    if (!discarding_) {
      partial_.append(data, chunk_end);
      if (partial_.size() > max_line_bytes_) {
        // Entering discard mode: keep a short prefix for the diagnostic,
        // drop the rest, and eat bytes until the line's terminator.
        partial_.resize(std::min(kOverflowPrefixBytes, max_line_bytes_));
        discarding_ = true;
      }
    }
    if (nl == nullptr) return;
    FinishLine();
    data = nl + 1;
  }
}

bool LineFramer::Next(std::string* line, bool* overflow) {
  if (ready_.empty()) return false;
  *line = std::move(ready_.front().text);
  *overflow = ready_.front().overflow;
  ready_.pop_front();
  return true;
}

bool LineFramer::TakePartial(std::string* line, bool* overflow) {
  if (partial_.empty() && !discarding_) return false;
  if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
  *line = std::move(partial_);
  *overflow = discarding_;
  partial_.clear();
  discarding_ = false;
  return true;
}

std::size_t LineFramer::buffered() const {
  std::size_t bytes = partial_.size();
  for (const Line& l : ready_) bytes += l.text.size();
  return bytes;
}

}  // namespace ddos::netd
