// Thin RAII layer over the POSIX sockets the ddoscoped daemon uses.
//
// Everything here is a direct wrapper - no buffering, no framing, no event
// loop - so the interesting logic (netd/framer.h, netd/connection.h,
// netd/server.h) is testable without touching a file descriptor. All
// sockets are IPv4 TCP; the daemon binds loopback by default and the test
// suite never leaves it. Sends use MSG_NOSIGNAL throughout: a peer that
// vanished mid-write must surface as EPIPE, never as a process-killing
// SIGPIPE.
#ifndef DDOSCOPE_NETD_SOCKET_H_
#define DDOSCOPE_NETD_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

namespace ddos::netd {

// Owns one file descriptor; closes on destruction. Movable, not copyable.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { Reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

// Marks the process as ignoring SIGPIPE (idempotent). The CLI calls this
// once at startup so a dropped downstream pipe or client cannot kill a
// multi-day run; library code still uses MSG_NOSIGNAL and does not rely on
// process-wide state.
void IgnoreSigpipe();

// Creates a listening TCP socket bound to host:port (SO_REUSEADDR,
// non-blocking, backlog 64). port 0 binds an ephemeral port; *bound_port
// receives the actual port. Throws std::runtime_error on failure.
FdHandle Listen(const std::string& host, std::uint16_t port,
                std::uint16_t* bound_port);

// Blocking loopback-style connect for clients (netd/client.h, tests,
// benches). Throws std::runtime_error on failure.
FdHandle Connect(const std::string& host, std::uint16_t port);

// Sets O_NONBLOCK. Throws std::runtime_error on failure.
void SetNonBlocking(int fd);

// Sets SO_RCVTIMEO so blocking reads cannot hang a test forever.
void SetRecvTimeout(int fd, int millis);

// Disables Nagle; the record feed is latency-sensitive small writes.
void SetNoDelay(int fd);

// Creates a non-blocking self-pipe (read end, write end) used to wake the
// poll loop from signal handlers and other threads. Throws on failure.
std::pair<FdHandle, FdHandle> MakeWakePipe();

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_SOCKET_H_
