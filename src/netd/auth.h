// Client auth tokens and per-client ingest quotas for ddoscoped.
//
// The daemon models the paper's collection side: many monitoring feeds
// pushing attack records into one characterization pipeline. Each feed
// authenticates with a bearer token (`AUTH <token>` as its first protocol
// line) that maps to a client name - the label its connections carry in
// /status and in the per-client metrics - and an optional record quota, the
// blunt instrument that keeps one misconfigured feed from drowning the
// rest. An empty table disables authentication entirely (the `nc` smoke
// path: connect and stream rows immediately).
//
// Tokens are configured as SPEC strings, comma-separated on the command
// line or one per line in a token file (# comments and blank lines
// skipped):
//
//   TOKEN[:NAME[:MAX_RECORDS]]
//
// e.g. `s3cret:upstream-eu:500000,t0ken:upstream-us`. A missing NAME
// defaults to the token's first 8 characters; MAX_RECORDS 0 (the default)
// means unlimited.
#ifndef DDOSCOPE_NETD_AUTH_H_
#define DDOSCOPE_NETD_AUTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ddos::netd {

struct TokenSpec {
  std::string token;
  std::string name;                // client label for status and metrics
  std::uint64_t max_records = 0;   // per-connection record quota; 0 = none
};

class AuthTable {
 public:
  // Registers one token; replaces an existing entry with the same token.
  void Add(TokenSpec spec);

  // Parses one "TOKEN[:NAME[:MAX_RECORDS]]" spec. Throws std::runtime_error
  // on an empty token or malformed quota.
  static TokenSpec ParseSpec(std::string_view spec);

  // Parses a comma-separated spec list into a table.
  static AuthTable FromSpecList(std::string_view specs);

  // Loads one spec per line; '#' comments and blank lines are skipped.
  // Throws std::runtime_error when the file cannot be read.
  static AuthTable LoadFile(const std::string& path);

  // Null when the token is unknown. The returned pointer is stable for the
  // table's lifetime.
  const TokenSpec* Lookup(std::string_view token) const;

  bool empty() const { return tokens_.empty(); }
  std::size_t size() const { return tokens_.size(); }

 private:
  std::map<std::string, TokenSpec, std::less<>> tokens_;
};

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_AUTH_H_
