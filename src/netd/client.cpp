#include "netd/client.h"

#include <sys/socket.h>

#include <cerrno>
#include <sstream>
#include <stdexcept>

#include "common/iohooks.h"
#include "common/strings.h"
#include "data/csv.h"

namespace ddos::netd {

std::string FormatAttackLine(const data::AttackRecord& record) {
  std::ostringstream out;
  data::WriteAttackCsvRow(out, record);
  return out.str();
}

FeedClient::FeedClient(const std::string& host, std::uint16_t port)
    : FeedClient(host, port, Options{}) {}

FeedClient::FeedClient(const std::string& host, std::uint16_t port,
                       const Options& options)
    : fd_(Connect(host, port)) {
  SetRecvTimeout(fd_.get(), options.recv_timeout_ms);
}

void FeedClient::HandleReply(const std::string& line) {
  if (line.rfind("ACK ", 0) == 0 || line.rfind("PONG ", 0) == 0) {
    const std::size_t sp = line.find(' ');
    const std::size_t end = line.find(' ', sp + 1);
    const auto n = ParseInt64(std::string_view(line).substr(
        sp + 1, end == std::string::npos ? std::string::npos : end - sp - 1));
    // Both ACK and PONG carry the server's committed count, so both raise
    // the durable high-water mark the reconnect logic prunes against.
    if (n.has_value() && static_cast<std::uint64_t>(*n) > last_acked_) {
      last_acked_ = static_cast<std::uint64_t>(*n);
    }
    if (line.rfind("ACK ", 0) == 0 &&
        (line.compare(line.size() - 4, 4, " end") == 0 ||
         (line.size() > 6 && line.compare(line.size() - 6, 6, " drain") == 0))) {
      saw_final_ack_ = true;
    }
  } else if (line.rfind("ERR", 0) == 0) {
    last_error_ = line;
  }
}

void FeedClient::DrainPendingReplies() {
  if (!fd_.valid()) return;
  char buf[4096];
  for (;;) {
    const ssize_t n =
        common::io_hooks()->Recv(fd_.get(), buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) server_closed_ = true;
    break;  // EAGAIN: nothing pending; errors surface on the next read
  }
  std::size_t eol;
  while ((eol = inbuf_.find('\n')) != std::string::npos) {
    std::string line = inbuf_.substr(0, eol);
    inbuf_.erase(0, eol + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    HandleReply(line);
  }
}

void FeedClient::SendLine(std::string_view line) {
  DrainPendingReplies();
  if (!fd_.valid() || server_closed_) {
    server_closed_ = true;
    return;
  }
  std::string wire(line);
  if (wire.empty() || wire.back() != '\n') wire.push_back('\n');
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = common::io_hooks()->Send(
        fd_.get(), wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    server_closed_ = true;  // EPIPE/ECONNRESET: the server hung up on us
    return;
  }
}

void FeedClient::SendRecord(const data::AttackRecord& record) {
  SendLine(FormatAttackLine(record));
}

std::string FeedClient::ReadLine() {
  for (;;) {
    const std::size_t eol = inbuf_.find('\n');
    if (eol != std::string::npos) {
      std::string line = inbuf_.substr(0, eol);
      inbuf_.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      HandleReply(line);
      return line;
    }
    if (server_closed_ || !fd_.valid()) return "";
    char buf[4096];
    const ssize_t n = common::io_hooks()->Recv(fd_.get(), buf, sizeof buf, 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      server_closed_ = true;
      continue;  // deliver any buffered tail, then ""
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("netd client: read timeout");
    }
    server_closed_ = true;
  }
}

std::string FeedClient::Auth(const std::string& token) {
  SendLine("AUTH " + token);
  const std::string reply = ReadLine();
  if (reply.rfind("OK ", 0) != 0) {
    throw std::runtime_error("netd client: auth rejected: " +
                             (reply.empty() ? "connection closed" : reply));
  }
  return reply;
}

std::uint64_t FeedClient::Resume(const std::string& client_id,
                                 std::uint64_t last_acked_seq) {
  SendLine(StrFormat("RESUME %s %llu", client_id.c_str(),
                     static_cast<unsigned long long>(last_acked_seq)));
  for (;;) {
    const std::string reply = ReadLine();
    if (reply.empty()) {
      throw std::runtime_error("netd client: resume failed: connection closed");
    }
    if (reply.rfind("OK RESUME ", 0) == 0) {
      const auto n = ParseInt64(std::string_view(reply).substr(10));
      if (!n.has_value()) {
        throw std::runtime_error("netd client: resume failed: bad reply " +
                                 reply);
      }
      return static_cast<std::uint64_t>(*n);
    }
    if (reply.rfind("ERR", 0) == 0) {
      throw std::runtime_error("netd client: resume failed: " + reply);
    }
  }
}

std::uint64_t FeedClient::Ping() {
  SendLine("PING");
  for (;;) {
    const std::string reply = ReadLine();
    if (reply.empty()) return last_acked_;
    if (reply.rfind("PONG ", 0) == 0) {
      const auto n = ParseInt64(std::string_view(reply).substr(5));
      return n.has_value() ? static_cast<std::uint64_t>(*n) : last_acked_;
    }
  }
}

std::uint64_t FeedClient::End() {
  SendLine("END");
  // Read to EOF: the final `ACK <n> end` (or the ERR verdict of an already
  // closed conversation) is in the tail; HandleReply tracks the high water.
  while (!ReadLine().empty()) {
  }
  return last_acked_;
}

std::string HttpGet(const std::string& host, std::uint16_t port,
                    const std::string& target, int* status_out) {
  FdHandle fd = Connect(host, port);
  SetRecvTimeout(fd.get(), 10000);
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd.get(), request.data() + off,
                             request.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("netd client: http send failed");
  }
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf, sizeof buf, 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    throw std::runtime_error("netd client: http read failed or timed out");
  }
  const std::size_t sp = response.find(' ');
  if (response.rfind("HTTP/", 0) != 0 || sp == std::string::npos) {
    throw std::runtime_error("netd client: malformed http response");
  }
  if (status_out != nullptr) {
    const auto code = ParseInt64(std::string_view(response).substr(sp + 1, 3));
    *status_out = code.has_value() ? static_cast<int>(*code) : 0;
  }
  std::size_t body = response.find("\r\n\r\n");
  if (body != std::string::npos) return response.substr(body + 4);
  body = response.find("\n\n");
  if (body != std::string::npos) return response.substr(body + 2);
  return "";
}

}  // namespace ddos::netd
