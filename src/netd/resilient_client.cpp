#include "netd/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "data/csv.h"

namespace ddos::netd {

namespace {

// The server's mind is made up: reconnecting and retrying cannot change
// an auth or session-identity rejection.
bool IsFatalHandshakeError(const std::string& what) {
  return what.find("unauthorized") != std::string::npos ||
         what.find("auth-required") != std::string::npos ||
         what.find("bad-session-id") != std::string::npos ||
         what.find("unexpected-resume") != std::string::npos;
}

// `ERR journal-failed` is the server shedding a batch it could not make
// durable (disk full, injected ENOSPC). Unlike a quota or protocol
// verdict it says nothing about future batches: the records were NOT
// committed, the connection was closed, and a reconnect + resend is the
// correct (and safe - nothing was acked) response.
bool IsTransientServerError(const std::string& err) {
  return err.find("journal-failed") != std::string::npos;
}

}  // namespace

ResilientFeedClient::ResilientFeedClient(const std::string& host,
                                         std::uint16_t port,
                                         const ResilientFeedOptions& options)
    : host_(host), port_(port), options_(options), rng_(options.seed) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.window_records < 1) options_.window_records = 1;
  if (options_.metrics != nullptr) {
    obs_reconnects_ = options_.metrics->GetCounter(
        "ddoscope_feed_reconnects_total",
        "Feed connections re-established after a failure.");
    obs_resent_ = options_.metrics->GetCounter(
        "ddoscope_feed_resent_total",
        "Window records resent after a reconnect.");
    obs_backoff_ = options_.metrics->GetHistogram(
        "ddoscope_feed_backoff_seconds",
        "Delay slept before reconnect attempts.",
        obs::ExponentialBounds(0.01, 2.0, 10));
  }
  Reconnect();
}

void ResilientFeedClient::SleepBackoff(int attempt) {
  const int shift = std::min(attempt, 20);
  double delay_ms = static_cast<double>(options_.backoff_initial_ms) *
                    static_cast<double>(std::uint64_t{1} << shift);
  delay_ms = std::min(delay_ms, static_cast<double>(options_.backoff_max_ms));
  delay_ms *= 0.5 + rng_.NextDouble();  // +-50% jitter against thundering herds
  obs::MaybeObserve(obs_backoff_, delay_ms / 1000.0);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<std::int64_t>(delay_ms)));
}

void ResilientFeedClient::PruneWindow(std::uint64_t acked) {
  while (!window_.empty() && window_.front().seq <= acked) {
    window_.pop_front();
  }
}

void ResilientFeedClient::NoteAcked(std::uint64_t acked) {
  if (acked > acked_floor_) acked_floor_ = acked;
  PruneWindow(acked_floor_);
}

void ResilientFeedClient::Reconnect() {
  client_.reset();
  int attempt = 0;
  std::string handshake_error;
  for (;;) {
    if (attempt > 0 || connected_once_) SleepBackoff(attempt);
    const std::uint64_t floor_before = acked_floor_;
    try {
      FeedClient::Options copts;
      copts.recv_timeout_ms = options_.recv_timeout_ms;
      auto fresh = std::make_unique<FeedClient>(host_, port_, copts);
      if (!options_.token.empty()) fresh->Auth(options_.token);
      const std::uint64_t have =
          fresh->Resume(options_.client_id, acked_floor_);
      if (connected_once_) {
        ++reconnects_;
        obs::MaybeAdd(obs_reconnects_);
      }
      connected_once_ = true;
      // `have` above next_seq_ means this client-id fed the server in a
      // previous process: continue its numbering so seqs keep matching
      // the server's session-cumulative counts.
      if (have > next_seq_) next_seq_ = have;
      NoteAcked(have);
      bool resend_ok = true;
      for (const auto& entry : window_) {
        fresh->SendLine(entry.line);
        if (fresh->closed_by_server()) {
          resend_ok = false;
          break;
        }
        ++records_resent_;
        obs::MaybeAdd(obs_resent_);
      }
      NoteAcked(fresh->last_acked());
      if (!fresh->last_error().empty()) last_error_ = fresh->last_error();
      if (resend_ok) {
        // A successful re-handshake supersedes an earlier transient
        // verdict; only errors that still stand should reach the caller.
        if (IsTransientServerError(last_error_)) last_error_.clear();
        client_ = std::move(fresh);
        return;
      }
      // Died mid-resend; some rows may still have landed - the next
      // RESUME will tell, and pruning counts as progress below.
    } catch (const std::runtime_error& error) {
      if (IsFatalHandshakeError(error.what())) throw;
      handshake_error = error.what();
    }
    if (acked_floor_ > floor_before) {
      attempt = 0;  // the server is alive and committing; keep at it
      continue;
    }
    if (++attempt >= options_.max_attempts) {
      std::string detail = last_error_.empty() ? handshake_error : last_error_;
      throw std::runtime_error(StrFormat(
          "netd client: feed '%s' gave up: %s:%u unreachable after %d "
          "attempts%s%s",
          options_.client_id.c_str(), host_.c_str(),
          static_cast<unsigned>(port_), options_.max_attempts,
          detail.empty() ? "" : ": ", detail.c_str()));
    }
  }
}

void ResilientFeedClient::EnsureConnected() {
  if (client_ == nullptr || client_->closed_by_server()) Reconnect();
}

void ResilientFeedClient::SyncWindow() {
  int stale = 0;
  while (window_.size() >= options_.window_records) {
    EnsureConnected();
    const std::uint64_t floor_before = acked_floor_;
    bool ping_ok = true;
    try {
      NoteAcked(client_->Ping());
    } catch (const std::runtime_error&) {
      ping_ok = false;  // read timeout: connection state is unknowable
    }
    if (!client_->last_error().empty()) last_error_ = client_->last_error();
    if (!ping_ok || client_->closed_by_server()) Reconnect();
    if (acked_floor_ > floor_before) {
      stale = 0;
    } else if (++stale >= options_.max_attempts) {
      throw std::runtime_error(StrFormat(
          "netd client: feed '%s' stalled: server will not acknowledge "
          "%zu in-flight records%s%s",
          options_.client_id.c_str(), window_.size(),
          last_error_.empty() ? "" : ": ", last_error_.c_str()));
    }
  }
}

void ResilientFeedClient::SendLine(const std::string& raw) {
  std::string line = raw;
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  if (line.empty()) return;
  if (line.rfind("ddos_id,", 0) == 0) {
    // Header: the server skips it; losing one to a reset is harmless, so
    // it is not windowed and not resent.
    EnsureConnected();
    client_->SendLine(line);
    return;
  }
  data::AttackRecord record;
  data::IngestError err;
  if (!data::TryParseAttackLine(line, &record, &err)) {
    // Malformed rows never advance the server's accepted count, so they
    // must not consume a sequence number; pass through so the server's
    // reject accounting still sees them.
    EnsureConnected();
    client_->SendLine(line);
    return;
  }
  if (!seen_ids_.insert(record.ddos_id).second) {
    // Mirror the server's per-session dedup client-side: a duplicate
    // would be rejected there without advancing the count, which would
    // let our numbering drift from the server's.
    ++duplicates_dropped_;
    return;
  }
  if (window_.size() >= options_.window_records) SyncWindow();
  EnsureConnected();
  ++next_seq_;
  window_.push_back(WindowEntry{next_seq_, std::move(line)});
  client_->SendLine(window_.back().line);
  if (client_->closed_by_server()) {
    Reconnect();
  } else {
    NoteAcked(client_->last_acked());
  }
}

void ResilientFeedClient::SendRecord(const data::AttackRecord& record) {
  SendLine(FormatAttackLine(record));
}

std::uint64_t ResilientFeedClient::Finish() {
  int stale = 0;
  for (;;) {
    EnsureConnected();
    const std::uint64_t floor_before = acked_floor_;
    bool end_ok = true;
    std::uint64_t final_count = 0;
    try {
      final_count = client_->End();
    } catch (const std::runtime_error&) {
      end_ok = false;  // read timeout mid-END
    }
    if (end_ok) NoteAcked(final_count);
    if (!client_->last_error().empty()) last_error_ = client_->last_error();
    if (end_ok && client_->saw_final_ack() && window_.empty()) {
      return acked_floor_;  // every windowed row is committed and covered
    }
    if (end_ok && !client_->last_error().empty() &&
        !IsTransientServerError(client_->last_error())) {
      // A fatal server verdict (quota, protocol): the unacked tail will
      // never be accepted; surface it via last_error() instead of
      // retrying forever. Transient verdicts (journal-failed) fall
      // through to the reconnect-and-resend path instead.
      return acked_floor_;
    }
    // Either the END exchange was lost or the final ACK does not cover
    // the whole window (rows died with an earlier connection): resend
    // and try END again.
    if (acked_floor_ > floor_before) {
      stale = 0;
    } else if (++stale >= options_.max_attempts) {
      throw std::runtime_error(StrFormat(
          "netd client: feed '%s' gave up: server vanished with %zu "
          "unacknowledged records after %d END attempts",
          options_.client_id.c_str(), window_.size(), options_.max_attempts));
    }
    Reconnect();
  }
}

}  // namespace ddos::netd
