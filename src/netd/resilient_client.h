// ResilientFeedClient: FeedClient plus reconnect, backoff, and a bounded
// replay window - the exactly-once client side of the RESUME handshake.
//
// The plain FeedClient treats a dead socket as the end of the
// conversation. This wrapper treats it as weather: every send that fails
// (or reply that never arrives) triggers a reconnect with jittered
// exponential backoff, a `RESUME <client-id> <last-acked-seq>` handshake,
// and a resend of exactly the window entries the server's committed count
// says it never saw. Combined with the server's write-ahead journal this
// gives exactly-once ingest across connection resets AND daemon restarts:
//
//   * every valid attack row gets a client-side sequence number and sits
//     in the in-flight window until an ACK/PONG covers it;
//   * the window is bounded (window_records); when full the client syncs
//     with a PING before accepting more, so memory and replay cost are
//     capped;
//   * on reconnect the server answers RESUME with its committed count
//     `have`; entries <= have are pruned (they are durable server-side),
//     the rest are resent in order. Nothing is lost, nothing is ingested
//     twice.
//
// Sequencing subtlety: the server's committed count only advances for rows
// it ACCEPTS, so the client must number rows exactly the way the server
// counts them. Therefore only parseable attack rows with fresh ddos_ids
// enter the window - header lines and malformed rows pass through
// unsequenced (the server rejects and never counts them), and duplicate
// ddos_ids are dropped client-side, mirroring the server's dedup policy.
// Feeds that disable server-side dedup should not reuse ids.
//
// Fatal versus retryable: `ERR unauthorized` / `ERR auth-required` /
// `ERR bad-session-id` end the feed (retrying cannot help);
// `ERR session-busy` is retried (a predecessor connection the server has
// not reaped yet still holds the session); everything else - resets,
// timeouts, EOF - is retried until max_attempts consecutive attempts make
// no progress, then ResilientFeedClient throws std::runtime_error.
#ifndef DDOSCOPE_NETD_RESILIENT_CLIENT_H_
#define DDOSCOPE_NETD_RESILIENT_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>

#include "common/rng.h"
#include "data/records.h"
#include "netd/client.h"
#include "obs/metrics.h"

namespace ddos::netd {

struct ResilientFeedOptions {
  std::string token;            // "" = no AUTH handshake
  std::string client_id = "feed";
  int max_attempts = 8;         // consecutive no-progress attempts before giving up
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
  std::uint64_t seed = 1;       // backoff jitter stream
  std::size_t window_records = 4096;  // in-flight (unacked) row cap
  int recv_timeout_ms = 10000;
  obs::MetricsRegistry* metrics = nullptr;  // optional instrumentation
};

class ResilientFeedClient {
 public:
  // Connects (with retries); throws std::runtime_error when the server is
  // unreachable after max_attempts.
  ResilientFeedClient(const std::string& host, std::uint16_t port,
                      const ResilientFeedOptions& options);

  // Feeds one raw protocol line. Valid attack rows are sequenced into the
  // replay window; headers and malformed rows pass through; duplicate
  // ddos_ids are dropped. Reconnects as needed; throws when the server is
  // gone for good.
  void SendLine(const std::string& raw);
  void SendRecord(const data::AttackRecord& record);

  // END handshake with retries: returns only once the server has
  // acknowledged every windowed row (ACK ... end/drain) or delivered a
  // fatal verdict. Throws when the server disappears permanently.
  // Returns the server's final acknowledged count.
  std::uint64_t Finish();

  std::uint64_t reconnects() const { return reconnects_; }
  std::uint64_t records_resent() const { return records_resent_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t sequenced() const { return next_seq_; }  // rows windowed
  // Highest server-committed sequence seen (ACK/PONG/RESUME).
  std::uint64_t acked() const { return acked_floor_; }
  // Last `ERR ...` verdict from the server ("" when none).
  const std::string& last_error() const { return last_error_; }

 private:
  struct WindowEntry {
    std::uint64_t seq;  // 1-based: the server's count after accepting it
    std::string line;
  };

  void Reconnect();                // throws after max_attempts no-progress
  void EnsureConnected();
  void PruneWindow(std::uint64_t acked);
  void NoteAcked(std::uint64_t acked);
  void SyncWindow();               // PING round trip + prune
  void SleepBackoff(int attempt);

  std::string host_;
  std::uint16_t port_;
  ResilientFeedOptions options_;
  Rng rng_;
  std::unique_ptr<FeedClient> client_;
  std::deque<WindowEntry> window_;
  std::unordered_set<std::uint64_t> seen_ids_;
  bool connected_once_ = false;
  std::uint64_t next_seq_ = 0;     // == rows sequenced so far
  std::uint64_t acked_floor_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t records_resent_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::string last_error_;
  obs::Counter* obs_reconnects_ = nullptr;
  obs::Counter* obs_resent_ = nullptr;
  obs::Histogram* obs_backoff_ = nullptr;
};

}  // namespace ddos::netd

#endif  // DDOSCOPE_NETD_RESILIENT_CLIENT_H_
