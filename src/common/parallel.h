// Fixed thread pool with a shared work queue.
//
// The parallel batch mode (stream/parallel_batch.h) analyzes time
// partitions concurrently and the benches fan replays out across cores;
// both need the same primitive: submit closures, wait for all of them.
// ParallelRunner keeps N threads alive for its whole lifetime so repeated
// Submit/Wait rounds pay thread-creation cost once, and Wait() doubles as
// the reduction barrier before merge steps.
//
// Exceptions thrown by tasks are captured; the first one is rethrown from
// Wait() (as std::runtime_error with the original message), so a failing
// partition analysis surfaces instead of vanishing on a worker thread.
#ifndef DDOSCOPE_COMMON_PARALLEL_H_
#define DDOSCOPE_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace ddos::common {

// Threads to use when the caller does not say: the hardware concurrency,
// with a floor of 1 (hardware_concurrency() may report 0).
std::size_t DefaultThreadCount();

class ParallelRunner {
 public:
  // 0 threads means DefaultThreadCount().
  explicit ParallelRunner(std::size_t threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  // Enqueues one task. Never blocks; tasks run on the pool's threads.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the
  // first captured task exception, if any.
  void Wait();

  // Publishes pool health under ddoscope_parallel_*: queue depth and busy
  // workers (gauges, updated at the submit/dispatch points the pool's mutex
  // already serializes), a task counter, and a task-latency histogram.
  // Call before the first Submit (workers read the handles without the
  // pool mutex once dispatched); the registry must outlive the runner.
  void AttachMetrics(obs::MetricsRegistry* registry);

  std::size_t thread_count() const { return threads_.size(); }

 private:
  void WorkerMain();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable done_cv_;   // signals Wait(): all drained
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stop_ = false;
  bool failed_ = false;
  std::string first_error_;

  // Resolved obs handles; null when unattached.
  obs::Counter* obs_tasks_ = nullptr;
  obs::Gauge* obs_queue_depth_ = nullptr;
  obs::Gauge* obs_busy_workers_ = nullptr;
  obs::Histogram* obs_task_seconds_ = nullptr;
};

}  // namespace ddos::common

#endif  // DDOSCOPE_COMMON_PARALLEL_H_
