// Calendar and wall-clock utilities.
//
// All times in ddoscope are UTC and carried as whole seconds since the Unix
// epoch, wrapped in the strong type `TimePoint`. The dataset studied by the
// paper spans 2012-08-29 .. 2013-03-24 (207 days) with hourly snapshots, so
// second resolution is sufficient everywhere; sub-second precision is never
// observed in the Table-I schema.
//
// Civil-date conversion uses Howard Hinnant's `days_from_civil` algorithm,
// which is exact over the full proleptic Gregorian calendar.
#ifndef DDOSCOPE_COMMON_TIME_H_
#define DDOSCOPE_COMMON_TIME_H_

#include <cstdint>
#include <compare>
#include <optional>
#include <string>
#include <string_view>

namespace ddos {

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

// A calendar date in the proleptic Gregorian calendar (UTC).
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  auto operator<=>(const CivilDate&) const = default;
};

// A calendar date plus time-of-day (UTC).
struct CivilTime {
  CivilDate date;
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59

  auto operator<=>(const CivilTime&) const = default;
};

// Days since 1970-01-01 for a civil date. Exact for all representable dates.
std::int64_t DaysFromCivil(const CivilDate& d);

// Inverse of DaysFromCivil.
CivilDate CivilFromDays(std::int64_t days_since_epoch);

// True if `d` names an actual calendar day (month/day ranges, leap years).
bool IsValidDate(const CivilDate& d);

// A point in time: whole seconds since the Unix epoch, UTC.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t seconds_since_epoch)
      : secs_(seconds_since_epoch) {}

  static TimePoint FromCivil(const CivilTime& ct);
  static TimePoint FromDate(int year, int month, int day);

  // Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS". Throws std::invalid_argument
  // on malformed input.
  static TimePoint Parse(const std::string& text);

  // Non-throwing Parse over a (possibly unterminated) character span: the
  // hot-path form used once per timestamp field by the CSV span parser and
  // the sharded router's pre-scan. Accepts exactly what Parse accepts -
  // leading whitespace and an optional sign before each number (the sscanf
  // %d behaviors Parse historically had), trailing garbage after the
  // seconds field tolerated, trailing bytes after a date-only form not.
  // Both the router pre-scan and the full row parse call this one
  // implementation, so their accept/reject decisions cannot diverge.
  static std::optional<TimePoint> TryParse(std::string_view text) noexcept;

  CivilTime ToCivil() const;

  // "YYYY-MM-DD HH:MM:SS"
  std::string ToString() const;
  // "YYYY-MM-DD"
  std::string ToDateString() const;

  constexpr std::int64_t seconds() const { return secs_; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(std::int64_t seconds) const {
    return TimePoint(secs_ + seconds);
  }
  constexpr TimePoint operator-(std::int64_t seconds) const {
    return TimePoint(secs_ - seconds);
  }
  // Signed difference in seconds.
  constexpr std::int64_t operator-(TimePoint other) const {
    return secs_ - other.secs_;
  }
  TimePoint& operator+=(std::int64_t seconds) {
    secs_ += seconds;
    return *this;
  }

 private:
  std::int64_t secs_ = 0;
};

// Zero-based index of the day containing `t`, counted from `origin`
// (both interpreted as UTC midnights need not be aligned; integer floor).
std::int64_t DayIndex(TimePoint t, TimePoint origin);

// Zero-based index of the week containing `t`, counted from `origin`.
std::int64_t WeekIndex(TimePoint t, TimePoint origin);

// Midnight of the day containing `t`.
TimePoint StartOfDay(TimePoint t);

}  // namespace ddos

#endif  // DDOSCOPE_COMMON_TIME_H_
