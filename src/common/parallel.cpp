#include "common/parallel.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ddos::common {

std::size_t DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ParallelRunner::ParallelRunner(std::size_t threads) {
  const std::size_t n = threads == 0 ? DefaultThreadCount() : threads;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelRunner::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ParallelRunner::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (failed_) {
    failed_ = false;
    throw std::runtime_error("ParallelRunner task failed: " +
                             std::exchange(first_error_, std::string()));
  }
}

void ParallelRunner::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    std::string error;
    try {
      task();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (!error.empty() && !failed_) {
        failed_ = true;
        first_error_ = std::move(error);
      }
      if (tasks_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace ddos::common
