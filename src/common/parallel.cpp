#include "common/parallel.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace ddos::common {

std::size_t DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ParallelRunner::ParallelRunner(std::size_t threads) {
  const std::size_t n = threads == 0 ? DefaultThreadCount() : threads;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelRunner::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  obs_tasks_ = registry->GetCounter("ddoscope_parallel_tasks_total",
                                    "Tasks executed by the thread pool");
  obs_queue_depth_ = registry->GetGauge(
      "ddoscope_parallel_queue_depth", "Submitted tasks not yet dispatched");
  obs_busy_workers_ = registry->GetGauge(
      "ddoscope_parallel_busy_workers", "Workers currently running a task");
  obs_task_seconds_ = registry->GetHistogram(
      "ddoscope_parallel_task_seconds", "Latency of one pool task",
      obs::ExponentialBounds(1e-5, 4.0, 12));
  registry
      ->GetGauge("ddoscope_parallel_threads", "Worker threads in the pool")
      ->Set(static_cast<std::int64_t>(threads_.size()));
}

void ParallelRunner::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
    obs::MaybeSet(obs_queue_depth_, static_cast<std::int64_t>(tasks_.size()));
  }
  work_cv_.notify_one();
}

void ParallelRunner::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (failed_) {
    failed_ = false;
    throw std::runtime_error("ParallelRunner task failed: " +
                             std::exchange(first_error_, std::string()));
  }
}

void ParallelRunner::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
      obs::MaybeSet(obs_queue_depth_,
                    static_cast<std::int64_t>(tasks_.size()));
      obs::MaybeSet(obs_busy_workers_, static_cast<std::int64_t>(in_flight_));
    }
    std::string error;
    const auto started = std::chrono::steady_clock::now();
    try {
      task();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    obs::MaybeObserve(
        obs_task_seconds_,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
    obs::MaybeAdd(obs_tasks_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      obs::MaybeSet(obs_busy_workers_, static_cast<std::int64_t>(in_flight_));
      if (!error.empty() && !failed_) {
        failed_ = true;
        first_error_ = std::move(error);
      }
      if (tasks_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace ddos::common
