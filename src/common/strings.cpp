#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace ddos {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    // vsnprintf writes the terminating NUL into out[needed]; std::string
    // guarantees data()[size()] is writable as '\0' since C++11.
    std::vsnprintf(out.data(), static_cast<std::size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

namespace {

// from_chars rejects the explicit leading '+' that strtoll/strtod accepted;
// strip it here so the switch stays invisible to callers. "+-5" must still
// fail, so a sign directly after the plus is rejected.
std::string_view StripLeadingPlus(std::string_view s, bool* ok) {
  *ok = true;
  if (s.empty() || s.front() != '+') return s;
  s.remove_prefix(1);
  if (s.empty() || s.front() == '-' || s.front() == '+') *ok = false;
  return s;
}

}  // namespace

std::optional<std::int64_t> ParseInt64(std::string_view text) {
  bool ok = false;
  const std::string_view s = StripLeadingPlus(Trim(text), &ok);
  if (!ok || s.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> ParseDouble(std::string_view text) {
  bool ok = false;
  const std::string_view s = StripLeadingPlus(Trim(text), &ok);
  if (!ok || s.empty()) return std::nullopt;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace ddos
