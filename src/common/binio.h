// Little-endian binary serialization primitives plus an FNV-1a checksum.
//
// The checkpoint layer (stream/checkpoint.h) persists sketch and engine
// state as fixed-width little-endian scalars so files are portable across
// machines regardless of host endianness. Readers throw std::runtime_error
// on short reads: a torn checkpoint must fail loudly, never yield a
// half-restored engine. Doubles round-trip bit-exactly via bit_cast so a
// resumed run is numerically identical to an uninterrupted one.
#ifndef DDOSCOPE_COMMON_BINIO_H_
#define DDOSCOPE_COMMON_BINIO_H_

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace ddos::io {

inline void WriteU64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

inline std::uint64_t ReadU64(std::istream& in) {
  char b[8];
  if (!in.read(b, 8)) throw std::runtime_error("binio: unexpected end of input");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

inline void WriteU32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

inline std::uint32_t ReadU32(std::istream& in) {
  char b[4];
  if (!in.read(b, 4)) throw std::runtime_error("binio: unexpected end of input");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

inline void WriteU16(std::ostream& out, std::uint16_t v) {
  WriteU32(out, v);
}

inline std::uint16_t ReadU16(std::istream& in) {
  const std::uint32_t v = ReadU32(in);
  if (v > 0xffff) throw std::runtime_error("binio: u16 out of range");
  return static_cast<std::uint16_t>(v);
}

inline void WriteI64(std::ostream& out, std::int64_t v) {
  WriteU64(out, static_cast<std::uint64_t>(v));
}

inline std::int64_t ReadI64(std::istream& in) {
  return static_cast<std::int64_t>(ReadU64(in));
}

inline void WriteF64(std::ostream& out, double v) {
  WriteU64(out, std::bit_cast<std::uint64_t>(v));
}

inline double ReadF64(std::istream& in) {
  return std::bit_cast<double>(ReadU64(in));
}

// Length-prefixed string. The length cap rejects garbage prefixes before a
// multi-gigabyte allocation rather than after.
inline constexpr std::uint32_t kMaxStringBytes = 1u << 20;

inline void WriteString(std::ostream& out, const std::string& s) {
  if (s.size() > kMaxStringBytes) {
    throw std::runtime_error("binio: string too long");
  }
  WriteU32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string ReadString(std::istream& in) {
  const std::uint32_t n = ReadU32(in);
  if (n > kMaxStringBytes) throw std::runtime_error("binio: string too long");
  std::string s(n, '\0');
  if (n > 0 && !in.read(s.data(), n)) {
    throw std::runtime_error("binio: unexpected end of input");
  }
  return s;
}

// Overload set used by templated containers (e.g. SpaceSaving<Key>).
inline void WriteValue(std::ostream& out, std::uint32_t v) { WriteU32(out, v); }
inline void WriteValue(std::ostream& out, std::uint64_t v) { WriteU64(out, v); }
inline void WriteValue(std::ostream& out, const std::string& s) {
  WriteString(out, s);
}
inline void ReadValue(std::istream& in, std::uint32_t* v) { *v = ReadU32(in); }
inline void ReadValue(std::istream& in, std::uint64_t* v) { *v = ReadU64(in); }
inline void ReadValue(std::istream& in, std::string* s) { *s = ReadString(in); }

// FNV-1a 64-bit rolling checksum; cheap, dependency-free, and sufficient to
// detect the torn or bit-rotted checkpoints the resume path must refuse.
class Fnv1a64 {
 public:
  void Update(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= static_cast<unsigned char>(data[i]);
      hash_ *= 0x100000001b3ULL;
    }
  }
  void Update(const std::string& s) { Update(s.data(), s.size()); }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace ddos::io

#endif  // DDOSCOPE_COMMON_BINIO_H_
