#include "common/mmapio.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ddos::io {

namespace {

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("mmapio: cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("mmapio: read failed: " + path);
  }
  return std::move(buf).str();
}

}  // namespace

MmapFile MmapFile::Open(const std::string& path) {
  MmapFile f;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("mmapio: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  const bool statted = ::fstat(fd, &st) == 0;
  const bool regular = statted && S_ISREG(st.st_mode);
  if (regular && st.st_size == 0) {
    ::close(fd);
    return f;  // empty view, nothing to map
  }
  if (regular) {
    void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      ::close(fd);  // the mapping holds its own reference
      // Advisory only; the feed is consumed front to back exactly once.
      ::madvise(addr, static_cast<std::size_t>(st.st_size), MADV_SEQUENTIAL);
      f.data_ = static_cast<const char*>(addr);
      f.size_ = static_cast<std::size_t>(st.st_size);
      f.mapped_ = true;
      return f;
    }
  }
  // Pipes, special files, or an mmap refusal: buffer the bytes instead.
  ::close(fd);
  f.fallback_ = SlurpFile(path);
  f.data_ = f.fallback_.data();
  f.size_ = f.fallback_.size();
  return f;
}

MmapFile::~MmapFile() {
  if (mapped_) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && size_ > 0) data_ = fallback_.data();
  other.data_ = "";
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  if (mapped_) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  fallback_ = std::move(other.fallback_);
  if (!mapped_ && size_ > 0) data_ = fallback_.data();
  other.data_ = "";
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

}  // namespace ddos::io
