// Deterministic pseudo-random number generation.
//
// Every stochastic component of ddoscope (most importantly the botnet trace
// simulator) draws from `Rng`, a xoshiro256** generator seeded through
// splitmix64. Determinism matters here: the benchmark harness regenerates the
// paper's tables and figures from a fixed seed, so runs are exactly
// reproducible across machines, and `Fork()` provides independent substreams
// so that adding draws in one component does not perturb another.
#ifndef DDOSCOPE_COMMON_RNG_H_
#define DDOSCOPE_COMMON_RNG_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ddos {

// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna), plus a set of distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derives an independent substream; `stream` tags the purpose so two forks
  // with different tags never collide.
  Rng Fork(std::uint64_t stream) const;

  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  bool Bernoulli(double p);

  // Gaussian via Box-Muller (cached spare deviate).
  double Normal(double mean, double stddev);

  // exp(Normal(mu_log, sigma_log)).
  double LogNormal(double mu_log, double sigma_log);

  // Mean 1/rate.
  double Exponential(double rate);

  // Index drawn proportionally to `weights` (need not be normalized; negative
  // or zero entries are treated as unreachable). Requires a positive total.
  std::size_t Categorical(std::span<const double> weights);

  // Zipf-distributed rank in [0, n) with exponent `s` (s >= 0; s == 0 is
  // uniform). Linear-time inversion over precomputed weights is intentionally
  // avoided; this uses rejection-free CDF inversion on the fly for small n
  // and is O(n) worst case - fine for catalog-sized draws.
  std::size_t Zipf(std::size_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace ddos

#endif  // DDOSCOPE_COMMON_RNG_H_
