// A syscall seam under the serving stack's socket and file I/O.
//
// Production code never calls recv/send/accept/connect/write/fsync
// directly on the hot serving paths; it goes through `io_hooks()`, which
// defaults to a zero-cost passthrough. The chaos layer (src/chaos)
// installs a fault-injecting implementation so short reads, EINTR,
// connection resets, accept-time EMFILE, and disk-full journal writes can
// be rehearsed deterministically - in-process, with no root, no iptables,
// and no LD_PRELOAD.
//
// The global hook pointer is a single atomic: reads are one relaxed load,
// and the default instance is never null, so call sites need no branch.
// Installation is test/bench-scoped (see chaos::ScopedChaos); the hooks
// object must outlive every thread that might perform I/O through it.
#ifndef DDOSCOPE_COMMON_IOHOOKS_H_
#define DDOSCOPE_COMMON_IOHOOKS_H_

#include <sys/socket.h>
#include <sys/types.h>

namespace ddos::common {

class IoHooks {
 public:
  virtual ~IoHooks() = default;

  // Socket I/O. Semantics match the raw syscalls: return the syscall's
  // result and leave errno set on failure.
  virtual ssize_t Recv(int fd, void* buf, size_t len, int flags);
  virtual ssize_t Send(int fd, const void* buf, size_t len, int flags);
  virtual int Accept(int fd);
  virtual int Connect(int fd, const sockaddr* addr, socklen_t len);

  // File I/O (journal writes and fsync barriers).
  virtual ssize_t Write(int fd, const void* buf, size_t len);
  virtual int Fsync(int fd);

  // Pre-flight gate for whole-file writers that do not stream through
  // Write (the checkpoint path buffers via ofstream). Returns 0 when the
  // write may proceed, or an errno value (e.g. ENOSPC) to simulate the
  // target volume refusing it.
  virtual int PrepareFileWrite(const char* path);
};

// The active hooks; never null (defaults to the passthrough instance).
IoHooks* io_hooks();

// Installs `hooks` (nullptr restores the passthrough) and returns the
// previously active instance so callers can restore it.
IoHooks* SetIoHooks(IoHooks* hooks);

}  // namespace ddos::common

#endif  // DDOSCOPE_COMMON_IOHOOKS_H_
