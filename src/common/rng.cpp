#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ddos {

namespace {
constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Mix current state with the stream tag through splitmix64 so substreams
  // are decorrelated from the parent and from each other.
  SplitMix64 sm(s_[0] ^ Rotl(s_[3], 17) ^ (stream * 0x9e3779b97f4a7c15ULL + 1));
  return Rng(sm.Next());
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(NextU64());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Normal(mu_log, sigma_log));
}

double Rng::Exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Exponential: rate must be > 0");
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

std::size_t Rng::Categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Categorical: total weight must be > 0");
  }
  double r = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return 0;  // unreachable given the total check
}

std::size_t Rng::Zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be > 0");
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += std::pow(static_cast<double>(k), -s);
  double r = NextDouble() * total;
  for (std::size_t k = 1; k <= n; ++k) {
    r -= std::pow(static_cast<double>(k), -s);
    if (r < 0.0) return k - 1;
  }
  return n - 1;
}

}  // namespace ddos
