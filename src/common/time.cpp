#include "common/time.h"

#include <cstdio>
#include <stdexcept>

namespace ddos {

std::int64_t DaysFromCivil(const CivilDate& d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  std::int64_t y = d.year;
  const unsigned m = static_cast<unsigned>(d.month);
  const unsigned day = static_cast<unsigned>(d.day);
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + day - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);            // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);            // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                 // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                              // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(day)};
}

bool IsValidDate(const CivilDate& d) {
  if (d.month < 1 || d.month > 12 || d.day < 1) return false;
  static constexpr int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                           31, 31, 30, 31, 30, 31};
  int max_day = kDaysInMonth[d.month - 1];
  const bool leap =
      (d.year % 4 == 0 && d.year % 100 != 0) || (d.year % 400 == 0);
  if (d.month == 2 && leap) max_day = 29;
  return d.day <= max_day;
}

TimePoint TimePoint::FromCivil(const CivilTime& ct) {
  return TimePoint(DaysFromCivil(ct.date) * kSecondsPerDay +
                   ct.hour * kSecondsPerHour + ct.minute * kSecondsPerMinute +
                   ct.second);
}

TimePoint TimePoint::FromDate(int year, int month, int day) {
  return FromCivil(CivilTime{CivilDate{year, month, day}, 0, 0, 0});
}

TimePoint TimePoint::Parse(const std::string& text) {
  const auto tp = TryParse(text);
  if (!tp) {
    throw std::invalid_argument("TimePoint::Parse: bad date/time: " + text);
  }
  return *tp;
}

namespace {

inline bool IsSpaceAscii(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

// One sscanf-%d worth of input: optional whitespace, optional sign, at
// least one digit. Values wider than 18 digits are rejected outright
// (every calendar field is orders of magnitude smaller).
bool ScanInt(const char*& p, const char* end, std::int64_t* out) {
  while (p != end && IsSpaceAscii(*p)) ++p;
  bool neg = false;
  if (p != end && (*p == '+' || *p == '-')) {
    neg = (*p == '-');
    ++p;
  }
  if (p == end || *p < '0' || *p > '9') return false;
  std::int64_t v = 0;
  int digits = 0;
  while (p != end && *p >= '0' && *p <= '9') {
    if (++digits > 18) return false;
    v = v * 10 + (*p - '0');
    ++p;
  }
  *out = neg ? -v : v;
  return true;
}

constexpr std::int64_t kMaxCalendarField = 1000000;  // fits int comfortably

}  // namespace

std::optional<TimePoint> TimePoint::TryParse(std::string_view text) noexcept {
  const char* p = text.data();
  const char* const end = p + text.size();
  std::int64_t year = 0, month = 0, day = 0;
  if (!ScanInt(p, end, &year) || p == end || *p != '-') return std::nullopt;
  ++p;
  if (!ScanInt(p, end, &month) || p == end || *p != '-') return std::nullopt;
  ++p;
  if (!ScanInt(p, end, &day)) return std::nullopt;
  if (year < -kMaxCalendarField || year > kMaxCalendarField ||
      month < -kMaxCalendarField || month > kMaxCalendarField ||
      day < -kMaxCalendarField || day > kMaxCalendarField) {
    return std::nullopt;
  }
  CivilTime ct;
  ct.date = CivilDate{static_cast<int>(year), static_cast<int>(month),
                      static_cast<int>(day)};
  if (!IsValidDate(ct.date)) return std::nullopt;
  if (p != end) {
    std::int64_t hour = 0, minute = 0, second = 0;
    if (!ScanInt(p, end, &hour) || p == end || *p != ':') return std::nullopt;
    ++p;
    if (!ScanInt(p, end, &minute) || p == end || *p != ':') return std::nullopt;
    ++p;
    if (!ScanInt(p, end, &second)) return std::nullopt;
    if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
        second > 59) {
      return std::nullopt;
    }
    // Trailing bytes after the seconds field are tolerated, matching the
    // sscanf-based parser this replaced.
    ct.hour = static_cast<int>(hour);
    ct.minute = static_cast<int>(minute);
    ct.second = static_cast<int>(second);
  }
  return FromCivil(ct);
}

CivilTime TimePoint::ToCivil() const {
  std::int64_t days = secs_ / kSecondsPerDay;
  std::int64_t rem = secs_ % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime ct;
  ct.date = CivilFromDays(days);
  ct.hour = static_cast<int>(rem / kSecondsPerHour);
  ct.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  ct.second = static_cast<int>(rem % kSecondsPerMinute);
  return ct;
}

std::string TimePoint::ToString() const {
  const CivilTime ct = ToCivil();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.date.year,
                ct.date.month, ct.date.day, ct.hour, ct.minute, ct.second);
  return buf;
}

std::string TimePoint::ToDateString() const {
  const CivilTime ct = ToCivil();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ct.date.year, ct.date.month,
                ct.date.day);
  return buf;
}

namespace {
std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
}  // namespace

std::int64_t DayIndex(TimePoint t, TimePoint origin) {
  return FloorDiv(t - origin, kSecondsPerDay);
}

std::int64_t WeekIndex(TimePoint t, TimePoint origin) {
  return FloorDiv(t - origin, kSecondsPerWeek);
}

TimePoint StartOfDay(TimePoint t) {
  return TimePoint(FloorDiv(t.seconds(), kSecondsPerDay) * kSecondsPerDay);
}

}  // namespace ddos
