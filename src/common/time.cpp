#include "common/time.h"

#include <cstdio>
#include <stdexcept>

namespace ddos {

std::int64_t DaysFromCivil(const CivilDate& d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  std::int64_t y = d.year;
  const unsigned m = static_cast<unsigned>(d.month);
  const unsigned day = static_cast<unsigned>(d.day);
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + day - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);            // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);            // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                 // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                       // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                              // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(day)};
}

bool IsValidDate(const CivilDate& d) {
  if (d.month < 1 || d.month > 12 || d.day < 1) return false;
  static constexpr int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                           31, 31, 30, 31, 30, 31};
  int max_day = kDaysInMonth[d.month - 1];
  const bool leap =
      (d.year % 4 == 0 && d.year % 100 != 0) || (d.year % 400 == 0);
  if (d.month == 2 && leap) max_day = 29;
  return d.day <= max_day;
}

TimePoint TimePoint::FromCivil(const CivilTime& ct) {
  return TimePoint(DaysFromCivil(ct.date) * kSecondsPerDay +
                   ct.hour * kSecondsPerHour + ct.minute * kSecondsPerMinute +
                   ct.second);
}

TimePoint TimePoint::FromDate(int year, int month, int day) {
  return FromCivil(CivilTime{CivilDate{year, month, day}, 0, 0, 0});
}

TimePoint TimePoint::Parse(const std::string& text) {
  CivilTime ct;
  int n = 0;
  const int date_fields = std::sscanf(text.c_str(), "%d-%d-%d%n", &ct.date.year,
                                      &ct.date.month, &ct.date.day, &n);
  if (date_fields != 3 || !IsValidDate(ct.date)) {
    throw std::invalid_argument("TimePoint::Parse: bad date: " + text);
  }
  if (static_cast<size_t>(n) < text.size()) {
    const int time_fields = std::sscanf(text.c_str() + n, " %d:%d:%d", &ct.hour,
                                        &ct.minute, &ct.second);
    if (time_fields != 3 || ct.hour < 0 || ct.hour > 23 || ct.minute < 0 ||
        ct.minute > 59 || ct.second < 0 || ct.second > 59) {
      throw std::invalid_argument("TimePoint::Parse: bad time: " + text);
    }
  }
  return FromCivil(ct);
}

CivilTime TimePoint::ToCivil() const {
  std::int64_t days = secs_ / kSecondsPerDay;
  std::int64_t rem = secs_ % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime ct;
  ct.date = CivilFromDays(days);
  ct.hour = static_cast<int>(rem / kSecondsPerHour);
  ct.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  ct.second = static_cast<int>(rem % kSecondsPerMinute);
  return ct;
}

std::string TimePoint::ToString() const {
  const CivilTime ct = ToCivil();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.date.year,
                ct.date.month, ct.date.day, ct.hour, ct.minute, ct.second);
  return buf;
}

std::string TimePoint::ToDateString() const {
  const CivilTime ct = ToCivil();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ct.date.year, ct.date.month,
                ct.date.day);
  return buf;
}

namespace {
std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
}  // namespace

std::int64_t DayIndex(TimePoint t, TimePoint origin) {
  return FloorDiv(t - origin, kSecondsPerDay);
}

std::int64_t WeekIndex(TimePoint t, TimePoint origin) {
  return FloorDiv(t - origin, kSecondsPerWeek);
}

TimePoint StartOfDay(TimePoint t) {
  return TimePoint(FloorDiv(t.seconds(), kSecondsPerDay) * kSecondsPerDay);
}

}  // namespace ddos
