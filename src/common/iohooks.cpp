#include "common/iohooks.h"

#include <unistd.h>

#include <atomic>

namespace ddos::common {

ssize_t IoHooks::Recv(int fd, void* buf, size_t len, int flags) {
  return ::recv(fd, buf, len, flags);
}

ssize_t IoHooks::Send(int fd, const void* buf, size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}

int IoHooks::Accept(int fd) { return ::accept(fd, nullptr, nullptr); }

int IoHooks::Connect(int fd, const sockaddr* addr, socklen_t len) {
  return ::connect(fd, addr, len);
}

ssize_t IoHooks::Write(int fd, const void* buf, size_t len) {
  return ::write(fd, buf, len);
}

int IoHooks::Fsync(int fd) { return ::fsync(fd); }

int IoHooks::PrepareFileWrite(const char* /*path*/) { return 0; }

namespace {

IoHooks* DefaultHooks() {
  static IoHooks passthrough;
  return &passthrough;
}

std::atomic<IoHooks*> g_hooks{nullptr};

}  // namespace

IoHooks* io_hooks() {
  IoHooks* hooks = g_hooks.load(std::memory_order_acquire);
  return hooks != nullptr ? hooks : DefaultHooks();
}

IoHooks* SetIoHooks(IoHooks* hooks) {
  IoHooks* prev = g_hooks.exchange(hooks, std::memory_order_acq_rel);
  return prev != nullptr ? prev : DefaultHooks();
}

}  // namespace ddos::common
