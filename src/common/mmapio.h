// Read-only memory-mapped file input.
//
// The parse-in-shard ingest path (stream/sharded.h) routes raw line spans
// whose bytes must stay addressable until the workers have parsed them;
// mapping the feed once gives every thread a stable, zero-copy view of the
// whole file and lets the kernel stream pages in at readahead speed instead
// of the CLI double-buffering through getline. MmapFile is the owner of
// that view: open, hand out a std::string_view, unmap on destruction.
//
// Not every input is mappable (pipes, /proc files, and some filesystems
// reject mmap). Open() transparently falls back to slurping the file into
// an owned buffer in that case - callers get the same string_view contract
// either way, only `mapped()` tells the two apart (tests and the bench
// report it). Empty files map to an empty view, not an error.
#ifndef DDOSCOPE_COMMON_MMAPIO_H_
#define DDOSCOPE_COMMON_MMAPIO_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace ddos::io {

class MmapFile {
 public:
  // Maps `path` read-only (falling back to a buffered read when mmap is
  // not available for it). Throws std::runtime_error when the file cannot
  // be opened or read.
  static MmapFile Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // The file's bytes. Valid until destruction/move-out; workers holding
  // line spans into this view must be drained before the object dies.
  std::string_view view() const {
    return std::string_view(data_, size_);
  }
  std::size_t size() const { return size_; }
  // True when the view is a real mapping (false: owned fallback buffer).
  bool mapped() const { return mapped_; }

 private:
  const char* data_ = "";
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  // owns the bytes when !mapped_
};

}  // namespace ddos::io

#endif  // DDOSCOPE_COMMON_MMAPIO_H_
