// Bounded single-producer / single-consumer queue (Lamport ring buffer).
//
// The sharded stream engine feeds each worker from exactly one reader
// thread, so the queue only has to be safe for one producer and one
// consumer. That restriction buys a lock-free ring with two atomic cursors:
// the producer owns `tail_`, the consumer owns `head_`, and each side only
// ever *reads* the other's cursor (acquire) and *writes* its own (release).
// Capacity is rounded up to a power of two so wrap-around is a mask.
//
// TryPush/TryPop never block; callers that need backpressure retry with
// their own yield/sleep policy (see stream/sharded.cpp), which keeps the
// queue free of futexes and makes its behavior identical under TSan.
#ifndef DDOSCOPE_COMMON_SPSC_QUEUE_H_
#define DDOSCOPE_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace ddos::common {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when the ring is full.
  bool TryPush(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    ring_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Safe from either side; exact only for that side's view (which is all
  // the barrier in ShardedStreamEngine needs: the producer observing empty
  // while it is not pushing means every item was handed to the consumer).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_ + 1; }

  // Occupied slots at some instant during the call; exact from the
  // producer side while it is not pushing (same argument as Empty), and
  // never more than one batch stale from either side - good enough for the
  // ring-occupancy high-water gauge in obs.
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  std::size_t ApproxMemoryBytes() const {
    return sizeof(*this) + ring_.size() * sizeof(T);
  }

 private:
  std::size_t mask_ = 0;
  std::vector<T> ring_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace ddos::common

#endif  // DDOSCOPE_COMMON_SPSC_QUEUE_H_
