// Small string utilities shared across ddoscope.
//
// libstdc++ 12 does not ship <format>, so `StrFormat` wraps vsnprintf with a
// std::string return. Everything here is allocation-conscious but favors
// clarity; none of these run on hot paths.
#ifndef DDOSCOPE_COMMON_STRINGS_H_
#define DDOSCOPE_COMMON_STRINGS_H_

#include <cstdarg>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ddos {

// printf-style formatting into a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string StrFormat(const char* fmt, ...);

// Splits on a single character; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII lowercase copy.
std::string ToLower(std::string_view text);

// Strict integer / double parsing of the whole (trimmed) field.
std::optional<std::int64_t> ParseInt64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

}  // namespace ddos

#endif  // DDOSCOPE_COMMON_STRINGS_H_
