#include "chaos/chaos.h"

#include <cerrno>
#include <chrono>
#include <thread>

namespace ddos::chaos {

namespace {

// Injected short reads/writes deliver this fraction of the request (at
// least one byte), which is enough to force every continuation loop to
// run without turning a soak into a byte-at-a-time crawl.
constexpr size_t ShortenTo(size_t len) { return len > 4 ? len / 4 : 1; }

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortRead: return "short-read";
    case FaultKind::kShortWrite: return "short-write";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kConnReset: return "conn-reset";
    case FaultKind::kEpipe: return "epipe";
    case FaultKind::kAcceptEmfile: return "accept-emfile";
    case FaultKind::kConnectDelay: return "connect-delay";
    case FaultKind::kJournalEnospc: return "journal-enospc";
    case FaultKind::kFileEio: return "file-eio";
  }
  return "unknown";
}

FaultScheduleConfig FaultScheduleConfig::AllFaults(std::uint64_t seed,
                                                   double rate) {
  FaultScheduleConfig config;
  config.seed = seed;
  config.short_read_rate = rate;
  config.short_write_rate = rate;
  config.eintr_rate = rate;
  config.conn_reset_rate = rate;
  config.epipe_rate = rate;
  config.accept_emfile_rate = rate;
  config.connect_delay_rate = rate;
  config.journal_enospc_rate = rate;
  config.file_eio_rate = rate;
  return config;
}

FaultSchedule::FaultSchedule(const FaultScheduleConfig& config)
    : config_(config),
      streams_{Rng(config.seed).Fork(0), Rng(config.seed).Fork(1),
               Rng(config.seed).Fork(2), Rng(config.seed).Fork(3),
               Rng(config.seed).Fork(4), Rng(config.seed).Fork(5),
               Rng(config.seed).Fork(6), Rng(config.seed).Fork(7),
               Rng(config.seed).Fork(8)} {}

double FaultSchedule::RateFor(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kShortRead: return config_.short_read_rate;
    case FaultKind::kShortWrite: return config_.short_write_rate;
    case FaultKind::kEintr: return config_.eintr_rate;
    case FaultKind::kConnReset: return config_.conn_reset_rate;
    case FaultKind::kEpipe: return config_.epipe_rate;
    case FaultKind::kAcceptEmfile: return config_.accept_emfile_rate;
    case FaultKind::kConnectDelay: return config_.connect_delay_rate;
    case FaultKind::kJournalEnospc: return config_.journal_enospc_rate;
    case FaultKind::kFileEio: return config_.file_eio_rate;
  }
  return 0.0;
}

bool FaultSchedule::ShouldFire(FaultKind kind) {
  const double rate = RateFor(kind);
  const auto i = static_cast<std::size_t>(kind);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.considered[i];
  if (rate <= 0.0) return false;
  // Draw even at rate >= 1 so the substream advances identically whatever
  // the configured rate - replays stay aligned across rate sweeps.
  const bool fire = streams_[i].Bernoulli(rate > 1.0 ? 1.0 : rate);
  if (fire) ++stats_.injected[i];
  return fire;
}

FaultStats FaultSchedule::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ssize_t ChaosHooks::Recv(int fd, void* buf, size_t len, int flags) {
  if (schedule_.ShouldFire(FaultKind::kEintr)) {
    errno = EINTR;
    return -1;
  }
  if (schedule_.ShouldFire(FaultKind::kConnReset)) {
    errno = ECONNRESET;
    return -1;
  }
  if (schedule_.ShouldFire(FaultKind::kShortRead)) len = ShortenTo(len);
  return ::recv(fd, buf, len, flags);
}

ssize_t ChaosHooks::Send(int fd, const void* buf, size_t len, int flags) {
  if (schedule_.ShouldFire(FaultKind::kEintr)) {
    errno = EINTR;
    return -1;
  }
  if (schedule_.ShouldFire(FaultKind::kEpipe)) {
    errno = EPIPE;
    return -1;
  }
  if (schedule_.ShouldFire(FaultKind::kShortWrite)) len = ShortenTo(len);
  return ::send(fd, buf, len, flags);
}

int ChaosHooks::Accept(int fd) {
  if (schedule_.ShouldFire(FaultKind::kAcceptEmfile)) {
    errno = EMFILE;
    return -1;
  }
  return ::accept(fd, nullptr, nullptr);
}

int ChaosHooks::Connect(int fd, const sockaddr* addr, socklen_t len) {
  if (schedule_.ShouldFire(FaultKind::kConnectDelay)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(schedule_.config().connect_delay_ms));
  }
  return ::connect(fd, addr, len);
}

ssize_t ChaosHooks::Write(int fd, const void* buf, size_t len) {
  if (schedule_.ShouldFire(FaultKind::kJournalEnospc)) {
    errno = ENOSPC;
    return -1;
  }
  if (schedule_.ShouldFire(FaultKind::kShortWrite)) len = ShortenTo(len);
  return ::write(fd, buf, len);
}

int ChaosHooks::Fsync(int fd) {
  if (schedule_.ShouldFire(FaultKind::kFileEio)) {
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

int ChaosHooks::PrepareFileWrite(const char* /*path*/) {
  if (schedule_.ShouldFire(FaultKind::kJournalEnospc)) return ENOSPC;
  return 0;
}

ScopedChaos::ScopedChaos(const FaultScheduleConfig& config)
    : hooks_(std::make_unique<ChaosHooks>(config)),
      previous_(common::SetIoHooks(hooks_.get())) {}

ScopedChaos::~ScopedChaos() { common::SetIoHooks(previous_); }

}  // namespace ddos::chaos
