// ddos::chaos - deterministic seedable fault injection for the serving
// stack's syscall seam (common/iohooks.h).
//
// Real DDoS measurement infrastructure runs inside the blast radius it
// measures: partitions, resets, slow peers, and full disks are the common
// case. This layer rehearses them without leaving the process. ChaosHooks
// sits under every hooked recv/send/accept/connect/write/fsync and, per
// call, draws from a seeded schedule to decide whether the call fails
// (ECONNRESET, EPIPE, EINTR, EMFILE, ENOSPC, EIO), is shortened (partial
// read/write), or is delayed (slow connect). Each fault kind owns an
// independent forked RNG substream, so the decision sequence for one kind
// depends only on how many calls of that kind have happened - adding
// recv faults never perturbs the write-fault schedule, and a (seed, rates)
// pair replays the same per-kind decision stream on every run.
//
// Injected failures are *virtual*: an injected ECONNRESET returns -1 and
// sets errno but leaves the TCP connection healthy. That is exactly what
// the resilience machinery must survive - the client treats the socket as
// dead, reconnects, resumes its session, and the exactly-once window
// logic must make the rerun invisible in the final engine state.
//
// Thread safety: one mutex guards the schedule; hooks are called from
// client feed threads and the server's router loop concurrently.
#ifndef DDOSCOPE_CHAOS_CHAOS_H_
#define DDOSCOPE_CHAOS_CHAOS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>

#include "common/iohooks.h"
#include "common/rng.h"

namespace ddos::chaos {

// One injectable failure class. Every kind maps to a specific seam:
enum class FaultKind : std::uint8_t {
  kShortRead = 0,   // recv delivers a prefix of the requested bytes
  kShortWrite,      // send/write accepts a prefix
  kEintr,           // recv/send returns -1/EINTR without touching the fd
  kConnReset,       // recv returns -1/ECONNRESET
  kEpipe,           // send returns -1/EPIPE
  kAcceptEmfile,    // accept returns -1/EMFILE (fd exhaustion)
  kConnectDelay,    // connect is delayed by connect_delay_ms
  kJournalEnospc,   // write / PrepareFileWrite returns ENOSPC
  kFileEio,         // fsync returns -1/EIO
};
inline constexpr int kFaultKindCount = 9;

std::string_view FaultKindName(FaultKind kind);

struct FaultScheduleConfig {
  std::uint64_t seed = 1;
  // Per-call firing probabilities, one per seam.
  double short_read_rate = 0.0;
  double short_write_rate = 0.0;
  double eintr_rate = 0.0;
  double conn_reset_rate = 0.0;
  double epipe_rate = 0.0;
  double accept_emfile_rate = 0.0;
  double connect_delay_rate = 0.0;
  double journal_enospc_rate = 0.0;
  double file_eio_rate = 0.0;
  int connect_delay_ms = 20;

  // Every fault class active at `rate` - the soak bench's configuration.
  static FaultScheduleConfig AllFaults(std::uint64_t seed, double rate);
};

// What fired, bucketed by kind, so a soak can assert its schedule actually
// exercised every failure class it claims to.
struct FaultStats {
  std::array<std::uint64_t, kFaultKindCount> injected{};
  std::array<std::uint64_t, kFaultKindCount> considered{};

  std::uint64_t injected_for(FaultKind kind) const {
    return injected[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected() const {
    std::uint64_t t = 0;
    for (const std::uint64_t n : injected) t += n;
    return t;
  }
};

// The seeded decision stream. ShouldFire draws one Bernoulli from the
// kind's private substream and tallies it.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultScheduleConfig& config);

  bool ShouldFire(FaultKind kind);
  FaultStats Stats() const;
  const FaultScheduleConfig& config() const { return config_; }

 private:
  double RateFor(FaultKind kind) const;

  FaultScheduleConfig config_;
  mutable std::mutex mutex_;
  std::array<Rng, kFaultKindCount> streams_;
  FaultStats stats_;
};

// The IoHooks implementation that consults a FaultSchedule on every call.
class ChaosHooks : public common::IoHooks {
 public:
  explicit ChaosHooks(const FaultScheduleConfig& config)
      : schedule_(config) {}

  ssize_t Recv(int fd, void* buf, size_t len, int flags) override;
  ssize_t Send(int fd, const void* buf, size_t len, int flags) override;
  int Accept(int fd) override;
  int Connect(int fd, const sockaddr* addr, socklen_t len) override;
  ssize_t Write(int fd, const void* buf, size_t len) override;
  int Fsync(int fd) override;
  int PrepareFileWrite(const char* path) override;

  FaultStats Stats() const { return schedule_.Stats(); }

 private:
  FaultSchedule schedule_;
};

// RAII installer: constructs ChaosHooks, makes it the process-wide hooks,
// and restores the previous hooks on destruction. Keep the scope alive for
// as long as any thread may do hooked I/O.
class ScopedChaos {
 public:
  explicit ScopedChaos(const FaultScheduleConfig& config);
  ~ScopedChaos();

  ScopedChaos(const ScopedChaos&) = delete;
  ScopedChaos& operator=(const ScopedChaos&) = delete;

  FaultStats Stats() const { return hooks_->Stats(); }

 private:
  std::unique_ptr<ChaosHooks> hooks_;
  common::IoHooks* previous_;
};

}  // namespace ddos::chaos

#endif  // DDOSCOPE_CHAOS_CHAOS_H_
