// Attack-overview analyses (Sections II-D, III-A; Fig 1, Fig 2, Tables
// II-III).
#ifndef DDOSCOPE_CORE_OVERVIEW_H_
#define DDOSCOPE_CORE_OVERVIEW_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "geo/geo_db.h"

namespace ddos::core {

// --- Fig 1: popularity of attack types. ---
struct ProtocolCount {
  data::Protocol protocol;
  std::uint64_t attacks = 0;
};

// Attack counts per protocol, descending.
std::vector<ProtocolCount> ProtocolBreakdown(
    std::span<const data::AttackRecord> attacks);

// --- Table II: protocol preferences of each botnet family. ---
struct FamilyProtocolCount {
  data::Protocol protocol;
  data::Family family;
  std::uint64_t attacks = 0;
};

// Rows grouped by protocol (paper order), then family; zero rows omitted.
std::vector<FamilyProtocolCount> FamilyProtocolTable(
    std::span<const data::AttackRecord> attacks);

// --- Table III: summary of the workload. ---
struct WorkloadSummary {
  struct Side {
    std::uint64_t ips = 0;
    std::uint64_t cities = 0;
    std::uint64_t countries = 0;
    std::uint64_t organizations = 0;
    std::uint64_t asns = 0;
  };
  Side attackers;  // over distinct bot IPs (geo-resolved)
  Side victims;    // over attack targets
  std::uint64_t ddos_ids = 0;
  std::uint64_t botnet_ids = 0;
  std::uint64_t traffic_types = 0;
};

WorkloadSummary SummarizeWorkload(const data::Dataset& dataset,
                                  const geo::GeoDatabase& geo_db);

// --- Attack magnitude (# of participating bot IPs, Section III-B's
// spoofing-free proxy for attack size; used by Figs 15, 16, 18). ---
struct FamilyMagnitude {
  data::Family family;
  std::uint64_t attacks = 0;
  double mean = 0.0;
  double median = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Per-family magnitude summaries over the active families, ordered by mean
// descending; families without attacks are omitted.
std::vector<FamilyMagnitude> MagnitudeByFamily(
    std::span<const data::AttackRecord> attacks);

// --- Fig 2: daily attack distribution. ---
struct DailyDistribution {
  TimePoint origin;                  // first day's midnight
  std::vector<std::uint32_t> daily;  // attacks per day
  double mean_per_day = 0.0;
  std::uint32_t max_per_day = 0;
  int max_day_index = -1;            // day of the record count
  // The family responsible for the majority of the record day's attacks.
  data::Family max_day_dominant_family = data::Family::kAldibot;
  double max_day_dominant_share = 0.0;
};

DailyDistribution ComputeDailyDistribution(
    std::span<const data::AttackRecord> attacks);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_OVERVIEW_H_
