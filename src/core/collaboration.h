// Collaborative-attack analyses (Section V; Table VI, Figs 15-18).
//
// Two forms of collaboration are detected:
//  * concurrent: different botnets hit the same target with start times
//    within 60 s and durations within half an hour of each other;
//  * multistage (consecutive): attacks on one target chained back to back,
//    each starting at the previous attack's end within a +-60 s margin.
#ifndef DDOSCOPE_CORE_COLLABORATION_H_
#define DDOSCOPE_CORE_COLLABORATION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/target_analysis.h"
#include "data/dataset.h"

namespace ddos::core {

struct CollaborationConfig {
  std::int64_t start_window_s = 60;
  std::int64_t max_duration_diff_s = 1800;
};

struct CollabParticipant {
  std::size_t attack_index;  // into dataset.attacks()
  data::Family family;
  std::uint32_t botnet_id;
};

struct CollaborationEvent {
  net::IPv4Address target;
  TimePoint first_start;
  std::vector<CollabParticipant> participants;  // >= 2, distinct botnet ids
  bool intra_family = true;
};

// Sweeps every target's attack history; an event is a maximal group of
// attacks anchored at its earliest member, all starting within the window
// and with durations within the allowed difference, spanning at least two
// distinct botnet identifiers.
std::vector<CollaborationEvent> DetectConcurrentCollaborations(
    const data::Dataset& dataset, const CollaborationConfig& config = {});

// --- Table VI. ---
struct CollaborationTable {
  std::array<std::uint64_t, data::kFamilyCount> intra{};
  std::array<std::uint64_t, data::kFamilyCount> inter{};
};

CollaborationTable TabulateCollaborations(
    std::span<const CollaborationEvent> events);

// --- Fig 15: intra-family collaboration view for one family. ---
struct IntraCollabEvent {
  TimePoint time;
  std::vector<std::uint32_t> botnet_ids;
  std::vector<double> magnitudes;
};

struct IntraCollabView {
  std::vector<IntraCollabEvent> events;
  double avg_botnets_per_event = 0.0;  // Dirtjumper: 2.19 in the paper
  // Fraction of events where all participants report the same magnitude
  // ("for most bars along the same timestamp, they have the same height").
  double equal_magnitude_fraction = 0.0;
};

IntraCollabView AnalyzeIntraFamily(const data::Dataset& dataset,
                                   std::span<const CollaborationEvent> events,
                                   data::Family family);

// --- Fig 16 + Section V-A: one family pair in detail. ---
struct PairCollabPoint {
  TimePoint time;
  double duration_a_s = 0.0;
  double duration_b_s = 0.0;
  double magnitude_a = 0.0;
  double magnitude_b = 0.0;
};

struct PairCollabDetail {
  std::size_t events = 0;
  std::uint64_t unique_targets = 0;   // paper: 96 for DJ x Pandora
  std::uint64_t countries = 0;        // 16
  std::uint64_t organizations = 0;    // 58
  std::uint64_t asns = 0;             // 61
  std::vector<CountryCount> top_countries;  // RU 31, US 26, DE 14
  double avg_duration_a_s = 0.0;      // Dirtjumper: 5,083 s
  double avg_duration_b_s = 0.0;      // Pandora: 6,420 s
  std::vector<PairCollabPoint> series;
  std::int64_t span_days = 0;         // first-to-last collaboration
};

PairCollabDetail AnalyzeFamilyPair(const data::Dataset& dataset,
                                   std::span<const CollaborationEvent> events,
                                   data::Family family_a, data::Family family_b);

// --- Multistage chains (Section V-B; Figs 17-18). ---
struct ConsecutiveChain {
  net::IPv4Address target;
  std::vector<std::size_t> attack_indices;  // chronological
  std::vector<double> gaps_s;               // start[i+1] - end[i], in [-60, 60]
  std::vector<data::Family> families;       // distinct families involved
  std::int64_t span_seconds = 0;            // first start to last end
};

std::vector<ConsecutiveChain> DetectConsecutiveChains(
    const data::Dataset& dataset, std::int64_t margin_s = 60);

struct ChainStats {
  std::size_t chains = 0;
  std::size_t longest_length = 0;
  data::Family longest_family = data::Family::kAldibot;
  std::int64_t longest_span_s = 0;
  TimePoint longest_start;
  double gap_mean_s = 0.0;    // paper: 0.11 s
  double gap_median_s = 0.0;  // paper: 3 s
  double gap_std_s = 0.0;     // paper: 23 s
  std::vector<data::Family> families;  // distinct families with chains
  std::uint64_t intra_family_chains = 0;
  std::uint64_t cross_family_chains = 0;
};

ChainStats SummarizeChains(const data::Dataset& dataset,
                           std::span<const ConsecutiveChain> chains);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_COLLABORATION_H_
