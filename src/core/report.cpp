#include "core/report.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ddos::core {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };
  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string RenderBars(const std::vector<std::pair<std::string, double>>& items,
                       int width) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : items) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::string out;
  for (const auto& [label, value] : items) {
    const int bar = max_value > 0.0
                        ? static_cast<int>(std::lround(value / max_value * width))
                        : 0;
    out += label;
    out.append(label_width - label.size() + 2, ' ');
    out.append(static_cast<std::size_t>(bar), '#');
    out += StrFormat("  %s\n", Humanize(value).c_str());
  }
  return out;
}

std::string RenderCdf(const stats::Ecdf& ecdf, int points, bool log_x,
                      double log_floor, int width) {
  const auto series =
      log_x ? ecdf.LogSeries(points, log_floor) : ecdf.LinearSeries(points);
  std::string out;
  for (const stats::CdfPoint& p : series) {
    const int bar = static_cast<int>(std::lround(p.f * width));
    out += StrFormat("%12s  %6.4f  ", Humanize(p.x).c_str(), p.f);
    out.append(static_cast<std::size_t>(bar), '*');
    out.push_back('\n');
  }
  return out;
}

std::string RenderHistogram(const stats::Histogram& hist, int width) {
  std::uint64_t max_count = 0;
  for (const stats::HistogramBin& b : hist.bins()) {
    max_count = std::max(max_count, b.count);
  }
  std::string out;
  for (const stats::HistogramBin& b : hist.bins()) {
    const int bar =
        max_count > 0
            ? static_cast<int>(std::lround(static_cast<double>(b.count) /
                                           static_cast<double>(max_count) * width))
            : 0;
    out += StrFormat("[%10s, %10s)  %8llu  ", Humanize(b.lo).c_str(),
                     Humanize(b.hi).c_str(),
                     static_cast<unsigned long long>(b.count));
    out.append(static_cast<std::size_t>(bar), '#');
    out.push_back('\n');
  }
  return out;
}

std::string Humanize(double value) {
  const double a = std::abs(value);
  if (a >= 1e9) return StrFormat("%.2fG", value / 1e9);
  if (a >= 1e6) return StrFormat("%.2fM", value / 1e6);
  if (a >= 1e4) return StrFormat("%.1fk", value / 1e3);
  if (a >= 100.0) return StrFormat("%.0f", value);
  if (a == std::floor(a)) return StrFormat("%.0f", value);
  return StrFormat("%.2f", value);
}

}  // namespace ddos::core
