#include "core/collaboration.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "stats/descriptive.h"

namespace ddos::core {

std::vector<CollaborationEvent> DetectConcurrentCollaborations(
    const data::Dataset& dataset, const CollaborationConfig& config) {
  std::vector<CollaborationEvent> events;
  const auto attacks = dataset.attacks();

  for (const net::IPv4Address& target : dataset.Targets()) {
    const auto indices = dataset.AttacksOnTarget(target);
    if (indices.size() < 2) continue;
    // Indices are chronological (dataset sort order).
    std::size_t i = 0;
    while (i < indices.size()) {
      const data::AttackRecord& anchor = attacks[indices[i]];
      std::size_t j = i + 1;
      CollaborationEvent event;
      event.target = target;
      event.first_start = anchor.start_time;
      event.participants.push_back(
          CollabParticipant{indices[i], anchor.family, anchor.botnet_id});
      while (j < indices.size()) {
        const data::AttackRecord& cand = attacks[indices[j]];
        if (cand.start_time - anchor.start_time > config.start_window_s) break;
        if (std::llabs(cand.duration_seconds() - anchor.duration_seconds()) <=
            config.max_duration_diff_s) {
          event.participants.push_back(
              CollabParticipant{indices[j], cand.family, cand.botnet_id});
        }
        ++j;
      }
      std::set<std::uint32_t> botnets;
      std::set<data::Family> families;
      for (const CollabParticipant& p : event.participants) {
        botnets.insert(p.botnet_id);
        families.insert(p.family);
      }
      if (botnets.size() >= 2) {
        event.intra_family = families.size() == 1;
        events.push_back(std::move(event));
      }
      i = j;
    }
  }
  std::sort(events.begin(), events.end(),
            [](const CollaborationEvent& a, const CollaborationEvent& b) {
              return a.first_start < b.first_start;
            });
  return events;
}

CollaborationTable TabulateCollaborations(
    std::span<const CollaborationEvent> events) {
  CollaborationTable table;
  for (const CollaborationEvent& e : events) {
    std::set<data::Family> families;
    for (const CollabParticipant& p : e.participants) families.insert(p.family);
    for (const data::Family f : families) {
      if (e.intra_family) {
        ++table.intra[static_cast<std::size_t>(f)];
      } else {
        ++table.inter[static_cast<std::size_t>(f)];
      }
    }
  }
  return table;
}

IntraCollabView AnalyzeIntraFamily(const data::Dataset& dataset,
                                   std::span<const CollaborationEvent> events,
                                   data::Family family) {
  IntraCollabView view;
  std::size_t total_botnets = 0;
  std::size_t equal_magnitude = 0;
  for (const CollaborationEvent& e : events) {
    if (!e.intra_family || e.participants.front().family != family) continue;
    IntraCollabEvent ev;
    ev.time = e.first_start;
    std::set<std::uint32_t> botnets;
    bool equal = true;
    double first_mag = -1.0;
    for (const CollabParticipant& p : e.participants) {
      const data::AttackRecord& a = dataset.attacks()[p.attack_index];
      ev.botnet_ids.push_back(p.botnet_id);
      ev.magnitudes.push_back(static_cast<double>(a.magnitude));
      botnets.insert(p.botnet_id);
      if (first_mag < 0.0) {
        first_mag = static_cast<double>(a.magnitude);
      } else if (static_cast<double>(a.magnitude) != first_mag) {
        equal = false;
      }
    }
    total_botnets += botnets.size();
    if (equal) ++equal_magnitude;
    view.events.push_back(std::move(ev));
  }
  if (!view.events.empty()) {
    view.avg_botnets_per_event =
        static_cast<double>(total_botnets) / static_cast<double>(view.events.size());
    view.equal_magnitude_fraction = static_cast<double>(equal_magnitude) /
                                    static_cast<double>(view.events.size());
  }
  return view;
}

PairCollabDetail AnalyzeFamilyPair(const data::Dataset& dataset,
                                   std::span<const CollaborationEvent> events,
                                   data::Family family_a, data::Family family_b) {
  PairCollabDetail out;
  std::unordered_set<std::uint32_t> targets, asns;
  std::unordered_set<std::string> orgs;
  std::unordered_map<std::string, std::uint64_t> countries;
  double dur_a_sum = 0.0, dur_b_sum = 0.0;
  std::size_t dur_a_n = 0, dur_b_n = 0;
  TimePoint first_seen, last_seen;

  for (const CollaborationEvent& e : events) {
    if (e.intra_family) continue;
    const data::AttackRecord* a_rec = nullptr;
    const data::AttackRecord* b_rec = nullptr;
    for (const CollabParticipant& p : e.participants) {
      const data::AttackRecord& rec = dataset.attacks()[p.attack_index];
      if (p.family == family_a && a_rec == nullptr) a_rec = &rec;
      if (p.family == family_b && b_rec == nullptr) b_rec = &rec;
    }
    if (a_rec == nullptr || b_rec == nullptr) continue;

    if (out.events == 0) first_seen = e.first_start;
    last_seen = e.first_start;
    ++out.events;
    targets.insert(e.target.bits());
    asns.insert(a_rec->asn.value());
    orgs.insert(a_rec->organization);
    ++countries[a_rec->cc];
    dur_a_sum += static_cast<double>(a_rec->duration_seconds());
    ++dur_a_n;
    dur_b_sum += static_cast<double>(b_rec->duration_seconds());
    ++dur_b_n;
    out.series.push_back(PairCollabPoint{
        e.first_start, static_cast<double>(a_rec->duration_seconds()),
        static_cast<double>(b_rec->duration_seconds()),
        static_cast<double>(a_rec->magnitude), static_cast<double>(b_rec->magnitude)});
  }
  out.unique_targets = targets.size();
  out.countries = countries.size();
  out.organizations = orgs.size();
  out.asns = asns.size();
  for (const auto& [cc, c] : countries) {
    out.top_countries.push_back(CountryCount{cc, c});
  }
  std::sort(out.top_countries.begin(), out.top_countries.end(),
            [](const CountryCount& a, const CountryCount& b) {
              if (a.attacks != b.attacks) return a.attacks > b.attacks;
              return a.cc < b.cc;
            });
  if (out.top_countries.size() > 5) out.top_countries.resize(5);
  if (dur_a_n > 0) out.avg_duration_a_s = dur_a_sum / static_cast<double>(dur_a_n);
  if (dur_b_n > 0) out.avg_duration_b_s = dur_b_sum / static_cast<double>(dur_b_n);
  if (out.events > 0) {
    out.span_days = (last_seen - first_seen) / kSecondsPerDay;
  }
  return out;
}

std::vector<ConsecutiveChain> DetectConsecutiveChains(
    const data::Dataset& dataset, std::int64_t margin_s) {
  std::vector<ConsecutiveChain> chains;
  const auto attacks = dataset.attacks();
  for (const net::IPv4Address& target : dataset.Targets()) {
    const auto indices = dataset.AttacksOnTarget(target);
    if (indices.size() < 2) continue;
    std::size_t i = 0;
    while (i < indices.size()) {
      ConsecutiveChain chain;
      chain.target = target;
      chain.attack_indices.push_back(indices[i]);
      std::size_t j = i;
      while (j + 1 < indices.size()) {
        const data::AttackRecord& prev = attacks[indices[j]];
        const data::AttackRecord& next = attacks[indices[j + 1]];
        const std::int64_t gap = next.start_time - prev.end_time;
        if (std::llabs(gap) > margin_s) break;
        chain.attack_indices.push_back(indices[j + 1]);
        chain.gaps_s.push_back(static_cast<double>(gap));
        ++j;
      }
      if (chain.attack_indices.size() >= 2) {
        std::set<data::Family> families;
        for (std::size_t idx : chain.attack_indices) {
          families.insert(attacks[idx].family);
        }
        chain.families.assign(families.begin(), families.end());
        chain.span_seconds = attacks[chain.attack_indices.back()].end_time -
                             attacks[chain.attack_indices.front()].start_time;
        chains.push_back(std::move(chain));
      }
      i = j + 1;
    }
  }
  std::sort(chains.begin(), chains.end(),
            [&](const ConsecutiveChain& a, const ConsecutiveChain& b) {
              return attacks[a.attack_indices.front()].start_time <
                     attacks[b.attack_indices.front()].start_time;
            });
  return chains;
}

ChainStats SummarizeChains(const data::Dataset& dataset,
                           std::span<const ConsecutiveChain> chains) {
  ChainStats s;
  s.chains = chains.size();
  std::vector<double> gaps;
  std::set<data::Family> families;
  for (const ConsecutiveChain& c : chains) {
    gaps.insert(gaps.end(), c.gaps_s.begin(), c.gaps_s.end());
    for (const data::Family f : c.families) families.insert(f);
    if (c.families.size() == 1) {
      ++s.intra_family_chains;
    } else {
      ++s.cross_family_chains;
    }
    if (c.attack_indices.size() > s.longest_length) {
      s.longest_length = c.attack_indices.size();
      s.longest_family = c.families.front();
      s.longest_span_s = c.span_seconds;
      s.longest_start = dataset.attacks()[c.attack_indices.front()].start_time;
    }
  }
  s.families.assign(families.begin(), families.end());
  if (!gaps.empty()) {
    const stats::Summary sum = stats::Summarize(gaps);
    s.gap_mean_s = sum.mean;
    s.gap_median_s = sum.median;
    s.gap_std_s = sum.stddev;
  }
  return s;
}

}  // namespace ddos::core
