// One-call characterization report.
//
// Renders the paper's whole analysis suite over any dataset into a single
// markdown document - the "canonical tooling" version of the scattered
// scripts such studies usually run. Sections mirror the paper: workload
// overview, temporal behaviour (intervals/durations), source geolocation,
// targets, collaborations, and the derived defense parameters.
#ifndef DDOSCOPE_CORE_REPORT_GENERATOR_H_
#define DDOSCOPE_CORE_REPORT_GENERATOR_H_

#include <string>

#include "data/dataset.h"
#include "geo/geo_db.h"

namespace ddos::core {

struct ReportOptions {
  std::string title = "DDoS attack characterization report";
  int top_countries = 5;
  int top_organizations = 10;
  // Geo sections need snapshots + a geo database; disabled automatically
  // when the dataset has no snapshots.
  bool include_geolocation = true;
  bool include_collaborations = true;
  bool include_defense = true;
  // Minimum snapshots for a family to appear in the dispersion table.
  std::size_t min_snapshots = 100;
};

// Builds the report as a markdown string.
std::string GenerateCharacterizationReport(const data::Dataset& dataset,
                                           const geo::GeoDatabase& geo_db,
                                           const ReportOptions& options = {});

// Convenience: writes the report to a file (throws std::runtime_error on
// I/O failure).
void WriteCharacterizationReport(const std::string& path,
                                 const data::Dataset& dataset,
                                 const geo::GeoDatabase& geo_db,
                                 const ReportOptions& options = {});

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_REPORT_GENERATOR_H_
