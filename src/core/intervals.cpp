#include "core/intervals.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace ddos::core {

std::vector<double> IntervalsFromStarts(std::span<const TimePoint> starts) {
  std::vector<double> out;
  if (starts.size() < 2) return out;
  out.reserve(starts.size() - 1);
  for (std::size_t i = 1; i < starts.size(); ++i) {
    out.push_back(static_cast<double>(starts[i] - starts[i - 1]));
  }
  return out;
}

namespace {
std::vector<TimePoint> StartsOf(const data::Dataset& dataset,
                                std::span<const std::size_t> indices) {
  std::vector<TimePoint> starts;
  starts.reserve(indices.size());
  for (std::size_t idx : indices) {
    starts.push_back(dataset.attacks()[idx].start_time);
  }
  std::sort(starts.begin(), starts.end());
  return starts;
}
}  // namespace

std::vector<double> AllAttackIntervals(const data::Dataset& dataset) {
  std::vector<TimePoint> starts;
  starts.reserve(dataset.attacks().size());
  for (const data::AttackRecord& a : dataset.attacks()) {
    starts.push_back(a.start_time);
  }
  // attacks() is already chronological.
  return IntervalsFromStarts(starts);
}

std::vector<double> FamilyIntervals(const data::Dataset& dataset,
                                    data::Family f) {
  const auto starts = StartsOf(dataset, dataset.AttacksOfFamily(f));
  return IntervalsFromStarts(starts);
}

std::vector<double> TargetIntervals(const data::Dataset& dataset,
                                    net::IPv4Address target) {
  const auto starts = StartsOf(dataset, dataset.AttacksOnTarget(target));
  return IntervalsFromStarts(starts);
}

IntervalStats ComputeIntervalStats(std::span<const double> intervals) {
  IntervalStats s;
  s.summary = stats::Summarize(intervals);
  if (intervals.empty()) return s;
  std::uint64_t concurrent = 0;
  std::uint64_t in_1k_10k = 0;
  for (double v : intervals) {
    if (v <= static_cast<double>(kConcurrencyWindowS)) ++concurrent;
    if (v >= 1000.0 && v <= 10000.0) ++in_1k_10k;
  }
  const double n = static_cast<double>(intervals.size());
  s.fraction_concurrent = static_cast<double>(concurrent) / n;
  s.fraction_1k_10k = static_cast<double>(in_1k_10k) / n;
  const stats::Ecdf ecdf(intervals);
  s.p80_seconds = ecdf.Quantile(0.80);
  return s;
}

std::vector<IntervalCluster> ClusterIntervals(std::span<const double> intervals) {
  // Bucket edges in seconds. The 6-7 min / 20-40 min / 2-3 h bands the
  // paper highlights get their own cells inside the coarse units.
  struct Edge {
    const char* label;
    double lo, hi;
  };
  static constexpr Edge kEdges[] = {
      {"1-5 min", 60, 300},          {"6-7 min", 300, 480},
      {"8-19 min", 480, 1200},       {"20-40 min", 1200, 2400},
      {"41-119 min", 2400, 7200},    {"2-3 h", 7200, 10800},
      {"3-12 h", 10800, 43200},      {"12-24 h", 43200, 86400},
      {"1-7 days", 86400, 604800},   {"1-4 weeks", 604800, 2419200},
      {">= 1 month", 2419200, 1e18},
  };
  std::vector<IntervalCluster> out;
  for (const Edge& e : kEdges) {
    out.push_back(IntervalCluster{e.label, e.lo, e.hi, 0});
  }
  for (double v : intervals) {
    if (v <= static_cast<double>(kConcurrencyWindowS)) continue;  // simultaneous excluded (Fig 4)
    for (IntervalCluster& c : out) {
      if (v >= c.lo_s && v < c.hi_s) {
        ++c.count;
        break;
      }
    }
  }
  return out;
}

ConcurrencyReport AnalyzeConcurrency(const data::Dataset& dataset) {
  ConcurrencyReport report;
  const auto attacks = dataset.attacks();
  if (attacks.empty()) return report;

  std::map<std::pair<data::Family, data::Family>, std::uint64_t> pair_counts;
  std::set<data::Family> simultaneous_families;

  std::size_t group_begin = 0;
  auto flush = [&](std::size_t end) {
    const std::size_t size = end - group_begin;
    if (size >= 2) {
      ConcurrentGroup g;
      std::set<data::Family> families;
      for (std::size_t i = group_begin; i < end; ++i) {
        g.attack_indices.push_back(i);
        families.insert(attacks[i].family);
      }
      g.single_family = families.size() == 1;
      if (g.single_family) {
        ++report.single_family_groups;
        simultaneous_families.insert(*families.begin());
      } else {
        ++report.multi_family_groups;
        for (auto it = families.begin(); it != families.end(); ++it) {
          for (auto jt = std::next(it); jt != families.end(); ++jt) {
            ++pair_counts[{*it, *jt}];
          }
        }
      }
      report.groups.push_back(std::move(g));
    }
    group_begin = end;
  };

  for (std::size_t i = 1; i < attacks.size(); ++i) {
    if (attacks[i].start_time - attacks[i - 1].start_time > kConcurrencyWindowS) {
      flush(i);
    }
  }
  flush(attacks.size());

  report.simultaneous_families.assign(simultaneous_families.begin(),
                                      simultaneous_families.end());
  for (const auto& [pair, count] : pair_counts) {
    report.top_family_pairs.emplace_back(
        StrFormat("%s+%s", std::string(data::FamilyName(pair.first)).c_str(),
                  std::string(data::FamilyName(pair.second)).c_str()),
        count);
  }
  std::sort(report.top_family_pairs.begin(), report.top_family_pairs.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return report;
}

}  // namespace ddos::core
