// Geolocation analyses of attack sources (Section IV-A; Figs 8-11).
//
// * Shift patterns (Fig 8): week over week, how many bots of each family
//   come from countries the family has already used vs. countries that are
//   new for it.
// * Dispersion series (Figs 9-11): per hourly snapshot, the geographic
//   center of the participating bots and |sum of signed distances| to it.
//   A value of (near) zero means the bots are geographically symmetric.
#ifndef DDOSCOPE_CORE_GEO_ANALYSIS_H_
#define DDOSCOPE_CORE_GEO_ANALYSIS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "geo/geo_db.h"
#include "geo/geodesy.h"
#include "stats/histogram.h"

namespace ddos::core {

// Dispersion values below this are treated as "geographically symmetric".
// The paper reports exact zeros; with per-address coordinate jitter a small
// threshold plays that role.
inline constexpr double kSymmetryThresholdKm = 10.0;

struct DispersionPoint {
  TimePoint time;
  double value_km = 0.0;   // |sum of signed distances| (the paper's metric)
  double signed_km = 0.0;  // signed sum
  geo::Coordinate center;
  std::size_t bot_count = 0;
};

// One value per snapshot of `family`, chronological. Snapshots with fewer
// than two bots are skipped.
std::vector<DispersionPoint> DispersionSeries(const data::Dataset& dataset,
                                              const geo::GeoDatabase& geo_db,
                                              data::Family family);

// Just the value_km column.
std::vector<double> DispersionValues(std::span<const DispersionPoint> series);

// Fraction of values below the symmetry threshold (Pandora 76.7 %,
// Blackenergy 89.5 % in the paper).
double SymmetricFraction(std::span<const double> values,
                         double threshold_km = kSymmetryThresholdKm);

// Values with the symmetric ones removed - the series Figs 10-13 and
// Table IV operate on.
std::vector<double> AsymmetricValues(std::span<const double> values,
                                     double threshold_km = kSymmetryThresholdKm);

// --- Fig 8: weekly shift patterns. ---
struct WeeklyShift {
  int week = 0;
  std::uint64_t bots_existing_countries = 0;  // left axis (10^4 scale)
  std::uint64_t bots_new_countries = 0;       // right axis (10^3 scale)
  std::uint64_t new_countries = 0;            // countries first seen this week
};

// Aggregated across the given families (empty list = all active families).
// "New" is evaluated per family: a country is new in week w if that family
// never sourced a bot from it in any earlier week.
std::vector<WeeklyShift> ShiftAnalysis(const data::Dataset& dataset,
                                       const geo::GeoDatabase& geo_db,
                                       std::span<const data::Family> families);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_GEO_ANALYSIS_H_
