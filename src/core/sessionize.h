// Attack sessionization: turning raw observations into attack records.
//
// Section II-D defines the unit of analysis: monitoring systems log
// per-(botnet, target) activity continuously, and "for attacks whose
// interval exceeds 60 seconds, we consider them as different attacks". This
// module implements that preprocessing stage for raw observation feeds -
// the inverse of what the simulator emits, and the entry point for anyone
// adapting ddoscope to their own flow logs.
#ifndef DDOSCOPE_CORE_SESSIONIZE_H_
#define DDOSCOPE_CORE_SESSIONIZE_H_

#include <cstdint>
#include <vector>

#include "data/records.h"

namespace ddos::core {

// One raw monitoring observation: botnet X was seen attacking target Y over
// [start, end) with `sources` participating bot IPs.
struct Observation {
  std::uint32_t botnet_id = 0;
  data::Family family = data::Family::kAldibot;
  data::Protocol protocol = data::Protocol::kUnknown;
  net::IPv4Address target_ip;
  TimePoint start;
  TimePoint end;
  std::uint32_t sources = 0;  // distinct bot IPs in this observation
};

struct SessionizeConfig {
  // Observations on the same (botnet, target) closer than this merge into
  // one attack (Section II-D's rule).
  std::int64_t split_gap_s = 60;
};

// Groups observations by (botnet_id, target_ip), orders them, and merges
// runs whose inter-observation gap (next.start - prev.end) is at most
// `split_gap_s` into single AttackRecords:
//   * start = first observation's start, end = max end over the run,
//   * magnitude = max sources over the run (bots persist across
//     observations of one attack),
//   * protocol = the run's most frequent protocol.
// ddos_id is assigned sequentially from `first_ddos_id` in chronological
// order. Geo fields of the produced records are left empty - join them via
// a GeoDatabase afterwards if needed.
std::vector<data::AttackRecord> SessionizeObservations(
    std::vector<Observation> observations, const SessionizeConfig& config = {},
    std::uint64_t first_ddos_id = 1);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_SESSIONIZE_H_
