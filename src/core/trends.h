// Period-over-period trend analysis.
//
// The paper's introduction frames its study with industry trend reports
// ("the average DDoS attack size has increased by 245% ... average duration
// ... from 60 minutes ... to 72 minutes, which translates to 20% increase").
// This module computes exactly those operator-facing numbers from any
// dataset: fixed-length periods, per-period attack volume, duration,
// magnitude and protocol mix, plus the relative change between consecutive
// periods.
#ifndef DDOSCOPE_CORE_TRENDS_H_
#define DDOSCOPE_CORE_TRENDS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ddos::core {

struct PeriodStats {
  int index = 0;
  TimePoint begin;
  TimePoint end;
  std::uint64_t attacks = 0;
  std::uint64_t distinct_targets = 0;
  double mean_duration_s = 0.0;
  double median_duration_s = 0.0;
  double mean_magnitude = 0.0;       // mean # of bot IPs per attack
  double max_magnitude = 0.0;
  // Share of attacks per protocol within the period.
  std::array<double, data::kProtocolCount> protocol_share{};
};

struct PeriodDelta {
  int from_period = 0;
  int to_period = 0;
  // Relative changes ((new - old) / old); 0 when the old value is 0.
  double attacks = 0.0;
  double mean_duration = 0.0;
  double mean_magnitude = 0.0;
  double distinct_targets = 0.0;
};

struct TrendReport {
  std::vector<PeriodStats> periods;
  std::vector<PeriodDelta> deltas;  // one per consecutive period pair
  // Overall first-to-last change (empty dataset: zeros).
  PeriodDelta overall;
};

// Splits the observation window into consecutive `period_days`-day periods
// (the last one may be shorter) and aggregates each. Throws
// std::invalid_argument for period_days <= 0.
TrendReport ComputeTrends(const data::Dataset& dataset, int period_days = 28);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_TRENDS_H_
