#include "core/defense.h"

#include <algorithm>
#include <unordered_map>

#include "core/durations.h"
#include "stats/ecdf.h"

namespace ddos::core {

MitigationWindow RecommendMitigationWindow(
    std::span<const data::AttackRecord> attacks, double coverage) {
  MitigationWindow out;
  out.coverage = coverage;
  if (attacks.empty()) return out;
  const std::vector<double> durations = AttackDurations(attacks);
  const stats::Ecdf ecdf(durations);
  out.window_seconds = ecdf.Quantile(coverage);
  out.attacks_covered_fraction = ecdf.FractionAtMost(out.window_seconds);
  return out;
}

std::vector<BlacklistEntry> BuildSourceBlacklist(const data::Dataset& dataset,
                                                 const geo::GeoDatabase& geo_db,
                                                 std::size_t max_entries,
                                                 std::uint64_t min_appearances) {
  struct Agg {
    std::uint64_t appearances = 0;
    data::Family family = data::Family::kAldibot;
  };
  std::unordered_map<std::uint32_t, Agg> counts;
  for (const data::SnapshotRecord& snap : dataset.snapshots()) {
    for (const net::IPv4Address& ip : snap.bot_ips) {
      Agg& agg = counts[ip.bits()];
      ++agg.appearances;
      agg.family = snap.family;
    }
  }
  std::vector<BlacklistEntry> out;
  out.reserve(counts.size());
  for (const auto& [bits, agg] : counts) {
    if (agg.appearances < min_appearances) continue;
    const net::IPv4Address ip(bits);
    out.push_back(BlacklistEntry{ip, std::string(geo_db.Lookup(ip).country_code),
                                 agg.family, agg.appearances});
  }
  std::sort(out.begin(), out.end(),
            [](const BlacklistEntry& a, const BlacklistEntry& b) {
              if (a.appearances != b.appearances) {
                return a.appearances > b.appearances;
              }
              return a.ip < b.ip;
            });
  if (out.size() > max_entries) out.resize(max_entries);
  return out;
}

std::vector<WatchedTarget> BuildWatchList(const data::Dataset& dataset,
                                          std::size_t max_entries,
                                          std::size_t min_attacks) {
  std::vector<WatchedTarget> out;
  for (const net::IPv4Address& target : dataset.Targets()) {
    const auto indices = dataset.AttacksOnTarget(target);
    if (indices.size() < min_attacks) continue;
    std::vector<TimePoint> starts;
    starts.reserve(indices.size());
    for (std::size_t idx : indices) {
      starts.push_back(dataset.attacks()[idx].start_time);
    }
    const auto pred = PredictNextAttackStart(starts);
    if (!pred) continue;
    out.push_back(WatchedTarget{target, indices.size(), pred->predicted_start,
                                pred->interval_seconds});
  }
  std::sort(out.begin(), out.end(),
            [](const WatchedTarget& a, const WatchedTarget& b) {
              if (a.attack_count != b.attack_count) {
                return a.attack_count > b.attack_count;
              }
              return a.target < b.target;
            });
  if (out.size() > max_entries) out.resize(max_entries);
  return out;
}

}  // namespace ddos::core
