#include "core/bot_analysis.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/strings.h"

namespace ddos::core {

BotLifetimes ComputeBotLifetimes(const data::Dataset& dataset) {
  BotLifetimes out;
  std::vector<double> lifetimes;
  lifetimes.reserve(dataset.bots().size());
  std::uint64_t single = 0, over_week = 0;
  for (const data::BotRecord& bot : dataset.bots()) {
    const double seconds = static_cast<double>(bot.last_seen - bot.first_seen);
    lifetimes.push_back(seconds);
    if (seconds == 0.0) ++single;
    if (seconds > static_cast<double>(kSecondsPerWeek)) ++over_week;
  }
  out.summary = stats::Summarize(lifetimes);
  if (!lifetimes.empty()) {
    out.fraction_single_snapshot =
        static_cast<double>(single) / static_cast<double>(lifetimes.size());
    out.fraction_over_week =
        static_cast<double>(over_week) / static_cast<double>(lifetimes.size());
  }
  return out;
}

std::vector<BotCountryCount> BotCountryRanking(const data::Dataset& dataset,
                                               const geo::GeoDatabase& geo_db) {
  std::unordered_map<std::string, std::uint64_t> counts;
  for (const data::BotRecord& bot : dataset.bots()) {
    ++counts[std::string(geo_db.Lookup(bot.ip).country_code)];
  }
  std::vector<BotCountryCount> out;
  out.reserve(counts.size());
  for (const auto& [cc, count] : counts) {
    out.push_back(BotCountryCount{cc, count});
  }
  std::sort(out.begin(), out.end(),
            [](const BotCountryCount& a, const BotCountryCount& b) {
              if (a.bots != b.bots) return a.bots > b.bots;
              return a.cc < b.cc;
            });
  return out;
}

SharedBotReport AnalyzeSharedBots(const data::Dataset& dataset) {
  SharedBotReport out;
  // Per IP, the bitmask of families whose snapshots contained it.
  std::unordered_map<std::uint32_t, std::uint32_t> family_mask;
  for (const data::SnapshotRecord& snap : dataset.snapshots()) {
    const std::uint32_t bit = 1u << static_cast<unsigned>(snap.family);
    for (const net::IPv4Address& ip : snap.bot_ips) {
      family_mask[ip.bits()] |= bit;
    }
  }
  out.bots_in_snapshots = family_mask.size();

  std::map<std::pair<int, int>, std::uint64_t> pair_counts;
  for (const auto& [bits, mask] : family_mask) {
    if (__builtin_popcount(mask) < 2) continue;
    ++out.shared_bots;
    for (int a = 0; a < data::kFamilyCount; ++a) {
      if ((mask & (1u << a)) == 0) continue;
      for (int b = a + 1; b < data::kFamilyCount; ++b) {
        if ((mask & (1u << b)) != 0) ++pair_counts[{a, b}];
      }
    }
  }
  if (out.bots_in_snapshots > 0) {
    out.shared_fraction = static_cast<double>(out.shared_bots) /
                          static_cast<double>(out.bots_in_snapshots);
  }
  for (const auto& [pair, count] : pair_counts) {
    out.top_family_pairs.emplace_back(
        StrFormat("%s+%s",
                  std::string(data::FamilyName(static_cast<data::Family>(pair.first)))
                      .c_str(),
                  std::string(data::FamilyName(static_cast<data::Family>(pair.second)))
                      .c_str()),
        count);
  }
  std::sort(out.top_family_pairs.begin(), out.top_family_pairs.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace ddos::core
