#include "core/collab_graph.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace ddos::core {

CollaborationGraph CollaborationGraph::Build(
    const data::Dataset& dataset, std::span<const CollaborationEvent> events) {
  CollaborationGraph graph;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<std::uint32_t, bool>>
      edge_map;  // (a,b) -> (weight, cross_family)

  auto node_of = [&](std::uint32_t botnet, data::Family family) -> Node& {
    const auto [it, inserted] =
        graph.node_index_.try_emplace(botnet, graph.nodes_.size());
    if (inserted) {
      graph.nodes_.push_back(Node{botnet, family, 0, 0});
    }
    return graph.nodes_[it->second];
  };

  for (const CollaborationEvent& event : events) {
    // Distinct botnets of the event (a botnet may appear twice via two
    // attacks; count it once per event).
    std::map<std::uint32_t, data::Family> members;
    for (const CollabParticipant& p : event.participants) {
      members.emplace(p.botnet_id, p.family);
    }
    for (const auto& [botnet, family] : members) {
      ++node_of(botnet, family).events;
    }
    for (auto it = members.begin(); it != members.end(); ++it) {
      for (auto jt = std::next(it); jt != members.end(); ++jt) {
        auto& entry = edge_map[{it->first, jt->first}];
        ++entry.first;
        entry.second = it->second != jt->second;
      }
    }
  }

  graph.edges_.reserve(edge_map.size());
  for (const auto& [key, value] : edge_map) {
    graph.edges_.push_back(Edge{key.first, key.second, value.first, value.second});
    ++graph.nodes_[graph.node_index_[key.first]].degree;
    ++graph.nodes_[graph.node_index_[key.second]].degree;
  }
  return graph;
}

std::vector<std::vector<std::uint32_t>> CollaborationGraph::Components() const {
  // Union-find over node indices.
  std::vector<std::size_t> parent(nodes_.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::size_t> rank(nodes_.size(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
  };
  for (const Edge& e : edges_) {
    unite(node_index_.at(e.a), node_index_.at(e.b));
  }
  std::map<std::size_t, std::vector<std::uint32_t>> groups;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    groups[find(i)].push_back(nodes_[i].botnet_id);
  }
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.size() > b.size();
  });
  return out;
}

CollaborationGraph::Stats CollaborationGraph::ComputeStats() const {
  Stats s;
  s.nodes = nodes_.size();
  s.edges = edges_.size();
  for (const Edge& e : edges_) s.cross_family_edges += e.cross_family;
  const auto components = Components();
  s.components = components.size();
  s.largest_component = components.empty() ? 0 : components.front().size();
  std::uint64_t degree_sum = 0;
  for (const Node& n : nodes_) {
    degree_sum += n.degree;
    if (n.degree > s.hub_degree) {
      s.hub_degree = n.degree;
      s.hub_botnet = n.botnet_id;
      s.hub_family = n.family;
    }
  }
  if (!nodes_.empty()) {
    s.mean_degree = static_cast<double>(degree_sum) /
                    static_cast<double>(nodes_.size());
  }
  return s;
}

}  // namespace ddos::core
