#include "core/sessionize.h"

#include <algorithm>
#include <array>
#include <map>

namespace ddos::core {

std::vector<data::AttackRecord> SessionizeObservations(
    std::vector<Observation> observations, const SessionizeConfig& config,
    std::uint64_t first_ddos_id) {
  std::vector<data::AttackRecord> attacks;
  if (observations.empty()) return attacks;

  // Group by (botnet, target); observations inside a group sort by start.
  std::sort(observations.begin(), observations.end(),
            [](const Observation& a, const Observation& b) {
              if (a.botnet_id != b.botnet_id) return a.botnet_id < b.botnet_id;
              if (a.target_ip != b.target_ip) return a.target_ip < b.target_ip;
              return a.start < b.start;
            });

  std::array<std::uint32_t, data::kProtocolCount> protocol_votes{};
  auto flush = [&](const Observation& head, TimePoint end,
                   std::uint32_t magnitude) {
    data::AttackRecord attack;
    attack.botnet_id = head.botnet_id;
    attack.family = head.family;
    attack.target_ip = head.target_ip;
    attack.start_time = head.start;
    attack.end_time = end;
    attack.magnitude = magnitude;
    std::size_t best = 0;
    for (std::size_t p = 1; p < protocol_votes.size(); ++p) {
      if (protocol_votes[p] > protocol_votes[best]) best = p;
    }
    attack.category = static_cast<data::Protocol>(best);
    attacks.push_back(std::move(attack));
    protocol_votes.fill(0);
  };

  const Observation* head = nullptr;
  TimePoint run_end;
  std::uint32_t run_magnitude = 0;
  for (const Observation& obs : observations) {
    const bool same_session =
        head != nullptr && head->botnet_id == obs.botnet_id &&
        head->target_ip == obs.target_ip &&
        obs.start - run_end <= config.split_gap_s;
    if (!same_session) {
      if (head != nullptr) flush(*head, run_end, run_magnitude);
      head = &obs;
      run_end = obs.end;
      run_magnitude = obs.sources;
    } else {
      run_end = std::max(run_end, obs.end);
      run_magnitude = std::max(run_magnitude, obs.sources);
    }
    ++protocol_votes[static_cast<std::size_t>(obs.protocol)];
  }
  if (head != nullptr) flush(*head, run_end, run_magnitude);

  // Chronological ids, like the upstream feed's global ddos_id.
  std::sort(attacks.begin(), attacks.end(),
            [](const data::AttackRecord& a, const data::AttackRecord& b) {
              return a.start_time < b.start_time;
            });
  for (data::AttackRecord& attack : attacks) {
    attack.ddos_id = first_ddos_id++;
  }
  return attacks;
}

}  // namespace ddos::core
