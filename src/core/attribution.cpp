#include "core/attribution.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"

namespace ddos::core {

namespace {

constexpr std::size_t kProtocolOffset = 0;
constexpr std::size_t kDurationOffset = kProtocolOffset + 7;
constexpr std::size_t kMagnitudeOffset = kDurationOffset + 8;
constexpr std::size_t kIntervalOffset = kMagnitudeOffset + 6;
constexpr std::size_t kCountryOffset = kIntervalOffset + 8;
constexpr std::size_t kCountryBuckets = 12;

std::size_t LogBucket(double value, double lo, double per_decade,
                      std::size_t buckets) {
  if (value <= lo) return 0;
  const std::size_t b =
      static_cast<std::size_t>(std::log10(value / lo) * per_decade);
  return std::min(b, buckets - 1);
}

std::size_t CountryBucket(const std::string& cc) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : cc) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % kCountryBuckets);
}

void NormalizeBlock(std::array<double, kFingerprintDims>& v, std::size_t offset,
                    std::size_t size) {
  double total = 0.0;
  for (std::size_t i = 0; i < size; ++i) total += v[offset + i];
  if (total <= 0.0) return;
  for (std::size_t i = 0; i < size; ++i) v[offset + i] /= total;
}

}  // namespace

double BehaviorFingerprint::Similarity(const BehaviorFingerprint& other) const {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < kFingerprintDims; ++i) {
    dot += values[i] * other.values[i];
    na += values[i] * values[i];
    nb += other.values[i] * other.values[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

BehaviorFingerprint FingerprintAttacks(const data::Dataset& dataset,
                                       std::span<const std::size_t> indices) {
  BehaviorFingerprint fp;
  if (indices.empty()) return fp;
  const auto attacks = dataset.attacks();

  std::vector<TimePoint> starts;
  starts.reserve(indices.size());
  for (const std::size_t idx : indices) {
    const data::AttackRecord& a = attacks[idx];
    fp.values[kProtocolOffset + static_cast<std::size_t>(a.category)] += 1.0;
    // Durations: 8 half-decade buckets over [10 s, ~3e5 s].
    fp.values[kDurationOffset +
              LogBucket(static_cast<double>(a.duration_seconds()), 10.0, 2.0, 8)] +=
        1.0;
    // Magnitudes: 6 half-decade buckets over [3, ~3000] bots.
    fp.values[kMagnitudeOffset +
              LogBucket(static_cast<double>(a.magnitude), 3.0, 2.0, 6)] += 1.0;
    fp.values[kCountryOffset + CountryBucket(a.cc)] += 1.0;
    starts.push_back(a.start_time);
  }
  // Intervals between this group's consecutive attacks: 8 decade buckets
  // over [1 s, 10^8 s]; simultaneous starts land in bucket 0.
  std::sort(starts.begin(), starts.end());
  for (std::size_t i = 1; i < starts.size(); ++i) {
    const double gap = static_cast<double>(starts[i] - starts[i - 1]);
    fp.values[kIntervalOffset + LogBucket(gap, 1.0, 1.0, 8)] += 1.0;
  }

  NormalizeBlock(fp.values, kProtocolOffset, 7);
  NormalizeBlock(fp.values, kDurationOffset, 8);
  NormalizeBlock(fp.values, kMagnitudeOffset, 6);
  NormalizeBlock(fp.values, kIntervalOffset, 8);
  NormalizeBlock(fp.values, kCountryOffset, kCountryBuckets);
  fp.attacks = indices.size();
  return fp;
}

FamilyClassifier FamilyClassifier::Train(
    const data::Dataset& dataset, std::span<const std::size_t> attack_indices) {
  FamilyClassifier classifier;
  std::array<std::vector<std::size_t>, data::kFamilyCount> by_family;
  for (const std::size_t idx : attack_indices) {
    by_family[static_cast<std::size_t>(dataset.attacks()[idx].family)].push_back(
        idx);
  }
  for (std::size_t f = 0; f < data::kFamilyCount; ++f) {
    if (by_family[f].empty()) continue;
    classifier.centroids_[f] = FingerprintAttacks(dataset, by_family[f]);
    classifier.trained_[f] = true;
  }
  return classifier;
}

std::optional<data::Family> FamilyClassifier::Classify(
    const BehaviorFingerprint& fp) const {
  if (fp.attacks == 0) return std::nullopt;
  double best = -2.0;
  std::optional<data::Family> winner;
  for (std::size_t f = 0; f < data::kFamilyCount; ++f) {
    if (!trained_[f]) continue;
    const double sim = fp.Similarity(centroids_[f]);
    if (sim > best) {
      best = sim;
      winner = static_cast<data::Family>(f);
    }
  }
  return winner;
}

std::vector<data::Family> FamilyClassifier::TrainedFamilies() const {
  std::vector<data::Family> out;
  for (std::size_t f = 0; f < data::kFamilyCount; ++f) {
    if (trained_[f]) out.push_back(static_cast<data::Family>(f));
  }
  return out;
}

AttributionEvaluation EvaluateAttribution(const data::Dataset& dataset,
                                          double holdout_fraction,
                                          std::size_t min_attacks,
                                          std::uint64_t seed) {
  AttributionEvaluation eval;
  Rng rng(seed ^ 0xa77bull);

  // Group attack indices by botnet.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_botnet;
  for (std::size_t i = 0; i < dataset.attacks().size(); ++i) {
    by_botnet[dataset.attacks()[i].botnet_id].push_back(i);
  }

  // Split botnets into train/test per family so every family keeps
  // training data.
  std::array<std::vector<std::uint32_t>, data::kFamilyCount> family_botnets;
  for (const auto& [botnet, indices] : by_botnet) {
    family_botnets[static_cast<std::size_t>(dataset.attacks()[indices.front()].family)]
        .push_back(botnet);
  }
  std::vector<std::size_t> train_indices;
  std::vector<std::uint32_t> test_botnets;
  for (auto& botnets : family_botnets) {
    if (botnets.empty()) continue;
    std::sort(botnets.begin(), botnets.end());
    rng.Shuffle(botnets);
    std::size_t holdout = static_cast<std::size_t>(
        std::floor(holdout_fraction * static_cast<double>(botnets.size())));
    holdout = std::min(holdout, botnets.size() - 1);  // keep training data
    for (std::size_t i = 0; i < botnets.size(); ++i) {
      if (i < holdout) {
        test_botnets.push_back(botnets[i]);
      } else {
        const auto& indices = by_botnet[botnets[i]];
        train_indices.insert(train_indices.end(), indices.begin(), indices.end());
      }
    }
  }

  const FamilyClassifier classifier =
      FamilyClassifier::Train(dataset, train_indices);
  for (const std::uint32_t botnet : test_botnets) {
    const auto& indices = by_botnet[botnet];
    if (indices.size() < min_attacks) continue;
    const BehaviorFingerprint fp = FingerprintAttacks(dataset, indices);
    const auto predicted = classifier.Classify(fp);
    if (!predicted) continue;
    const data::Family truth = dataset.attacks()[indices.front()].family;
    ++eval.botnets_evaluated;
    if (*predicted == truth) ++eval.correct;
    ++eval.confusion[static_cast<std::size_t>(truth)]
                    [static_cast<std::size_t>(*predicted)];
  }
  if (eval.botnets_evaluated > 0) {
    eval.accuracy = static_cast<double>(eval.correct) /
                    static_cast<double>(eval.botnets_evaluated);
  }
  return eval;
}

}  // namespace ddos::core
