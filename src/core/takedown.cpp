#include "core/takedown.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ddos::core {

std::vector<TakedownCandidate> RankTakedowns(
    const data::Dataset& dataset, std::span<const CollaborationEvent> events,
    const TakedownConfig& config) {
  std::unordered_map<std::uint32_t, TakedownCandidate> by_botnet;
  for (const data::AttackRecord& attack : dataset.attacks()) {
    TakedownCandidate& candidate = by_botnet[attack.botnet_id];
    candidate.botnet_id = attack.botnet_id;
    candidate.family = attack.family;
    ++candidate.attacks;
    candidate.attack_seconds += static_cast<double>(attack.duration_seconds());
  }
  for (const CollaborationEvent& event : events) {
    std::unordered_set<std::uint32_t> members;
    for (const CollabParticipant& p : event.participants) {
      members.insert(p.botnet_id);
    }
    for (const std::uint32_t botnet : members) {
      const auto it = by_botnet.find(botnet);
      if (it != by_botnet.end()) ++it->second.collaboration_events;
    }
  }
  std::vector<TakedownCandidate> ranking;
  ranking.reserve(by_botnet.size());
  for (auto& [id, candidate] : by_botnet) {
    candidate.utility =
        candidate.attack_seconds +
        config.collaboration_weight *
            static_cast<double>(candidate.collaboration_events);
    ranking.push_back(candidate);
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const TakedownCandidate& a, const TakedownCandidate& b) {
              if (a.utility != b.utility) return a.utility > b.utility;
              return a.botnet_id < b.botnet_id;
            });
  return ranking;
}

TakedownImpact SimulateTakedown(const data::Dataset& dataset,
                                std::span<const CollaborationEvent> events,
                                std::span<const TakedownCandidate> ranking,
                                std::size_t top_k) {
  TakedownImpact impact;
  std::unordered_set<std::uint32_t> removed;
  for (std::size_t i = 0; i < std::min(top_k, ranking.size()); ++i) {
    removed.insert(ranking[i].botnet_id);
  }
  impact.botnets_removed = removed.size();

  for (const data::AttackRecord& attack : dataset.attacks()) {
    const double seconds = static_cast<double>(attack.duration_seconds());
    impact.attack_seconds_total += seconds;
    if (removed.count(attack.botnet_id) > 0) {
      impact.attack_seconds_removed += seconds;
      ++impact.attacks_removed;
    }
  }
  for (const CollaborationEvent& event : events) {
    for (const CollabParticipant& p : event.participants) {
      if (removed.count(p.botnet_id) > 0) {
        ++impact.collaborations_broken;
        break;
      }
    }
  }
  if (impact.attack_seconds_total > 0.0) {
    impact.fraction_removed =
        impact.attack_seconds_removed / impact.attack_seconds_total;
  }
  return impact;
}

}  // namespace ddos::core
