// Defense-oriented derivations from the characterization results
// (Sections III-D, IV "insight into defenses", V summary).
//
// These are the paper's "future work" made concrete: a mitigation-window
// recommender built on the duration CDF (80 % of attacks end within ~4 h,
// so that is the budget an automatic mitigation must cover), a source
// blacklist ranked by bot recurrence, and a watch list of targets whose
// interval history makes the next attack predictable.
#ifndef DDOSCOPE_CORE_DEFENSE_H_
#define DDOSCOPE_CORE_DEFENSE_H_

#include <string>
#include <vector>

#include "core/prediction.h"
#include "data/dataset.h"
#include "geo/geo_db.h"

namespace ddos::core {

// --- Mitigation window (Section III-D). ---
struct MitigationWindow {
  double coverage = 0.0;    // requested duration-CDF coverage, e.g. 0.80
  double window_seconds = 0;  // duration quantile at that coverage
  double attacks_covered_fraction = 0.0;  // realized coverage
};

// Recommends how long an automatic mitigation must stay engaged to outlast
// the given fraction of attacks.
MitigationWindow RecommendMitigationWindow(
    std::span<const data::AttackRecord> attacks, double coverage = 0.80);

// --- Source blacklist. ---
struct BlacklistEntry {
  net::IPv4Address ip;
  std::string cc;
  data::Family family;
  std::uint64_t appearances = 0;  // snapshots the bot participated in
};

// Bots ranked by participation count; `min_appearances` filters one-off
// recruits (churned hosts give little blocking value).
std::vector<BlacklistEntry> BuildSourceBlacklist(const data::Dataset& dataset,
                                                 const geo::GeoDatabase& geo_db,
                                                 std::size_t max_entries = 1000,
                                                 std::uint64_t min_appearances = 3);

// --- Predictable-target watch list. ---
struct WatchedTarget {
  net::IPv4Address target;
  std::size_t attack_count = 0;
  TimePoint predicted_next;
  double predicted_interval_s = 0.0;
};

// Targets with enough history for a next-attack prediction, most-attacked
// first.
std::vector<WatchedTarget> BuildWatchList(const data::Dataset& dataset,
                                          std::size_t max_entries = 50,
                                          std::size_t min_attacks = 4);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_DEFENSE_H_
