// Upstream chokepoint analysis: where in the AS topology would filtering
// remove the most attack traffic?
//
// Section IV-B closes with the observation that target provisioning and
// prioritization can "maximize protection capabilities". This analysis makes
// that concrete: for every attack, route a sample of the attacking bots
// (from the family's bot snapshot at the attack hour) to the victim across
// the synthetic AS topology, count how often each *transit* AS carries
// attack traffic, and report the cumulative path coverage of filtering at
// the top-k busiest ASes.
#ifndef DDOSCOPE_CORE_CHOKEPOINT_H_
#define DDOSCOPE_CORE_CHOKEPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "geo/geo_db.h"
#include "net/as_graph.h"

namespace ddos::core {

struct ChokepointConfig {
  // Bots sampled per attack (the full snapshot can hold hundreds).
  int bots_per_attack = 12;
  // Attacks sampled per family (0 = all). Sampling keeps the sweep linear.
  int attacks_per_family = 2000;
  std::uint64_t seed = 1;
};

struct ChokepointEntry {
  net::Asn asn;
  net::AsTier tier = net::AsTier::kTransit;
  std::string organization;
  std::string country;
  std::uint64_t paths_carried = 0;
};

struct ChokepointReport {
  std::uint64_t total_paths = 0;
  // Transit/backbone ASes ranked by the number of attack paths they carry
  // (endpoints excluded - filtering at the victim's own AS is trivial and
  // at the bot's AS infeasible).
  std::vector<ChokepointEntry> ranking;
  // coverage[k] = fraction of attack paths touching at least one of the
  // top-(k+1) ASes of the ranking.
  std::vector<double> cumulative_coverage;
};

ChokepointReport AnalyzeChokepoints(const data::Dataset& dataset,
                                    const geo::GeoDatabase& geo_db,
                                    const net::AsGraph& as_graph,
                                    const ChokepointConfig& config = {});

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_CHOKEPOINT_H_
