#include "core/prediction.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/similarity.h"

namespace ddos::core {

std::optional<GeoPredictionResult> PredictDispersion(
    std::span<const double> series, const GeoPredictionConfig& config) {
  const std::size_t n = series.size();
  if (static_cast<int>(n) < config.min_series_length) return std::nullopt;
  const std::size_t split = static_cast<std::size_t>(
      std::clamp(config.train_fraction, 0.1, 0.9) * static_cast<double>(n));
  if (split < 16 || n - split < 8) return std::nullopt;

  const std::span<const double> train = series.subspan(0, split);
  const std::span<const double> test = series.subspan(split);

  GeoPredictionResult res;
  try {
    res.order = config.auto_order ? ts::SelectOrderAic(train, 3, 1, 2)
                                  : config.order;
    const ts::ArimaModel model = ts::ArimaModel::Fit(train, res.order);
    res.prediction = model.PredictOneStep(test);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  // Dispersion values are non-negative by construction; clamp forecasts.
  for (double& p : res.prediction) p = std::max(0.0, p);
  res.truth.assign(test.begin(), test.end());

  res.errors.resize(res.truth.size());
  for (std::size_t i = 0; i < res.truth.size(); ++i) {
    res.errors[i] = res.prediction[i] - res.truth[i];
  }
  const stats::Summary ps = stats::Summarize(res.prediction);
  const stats::Summary ts = stats::Summarize(res.truth);
  res.prediction_mean = ps.mean;
  res.prediction_std = ps.stddev;
  res.truth_mean = ts.mean;
  res.truth_std = ts.stddev;
  res.cosine_similarity = stats::CosineSimilarity(res.prediction, res.truth);
  res.mae = stats::MeanAbsoluteError(res.prediction, res.truth);
  res.rmse = stats::RootMeanSquaredError(res.prediction, res.truth);
  return res;
}

std::optional<StartTimePrediction> PredictNextAttackStart(
    std::span<const TimePoint> attack_starts) {
  if (attack_starts.size() < 3) return std::nullopt;
  std::vector<double> intervals;
  intervals.reserve(attack_starts.size() - 1);
  for (std::size_t i = 1; i < attack_starts.size(); ++i) {
    intervals.push_back(static_cast<double>(attack_starts[i] - attack_starts[i - 1]));
  }

  StartTimePrediction out;
  if (intervals.size() >= 24) {
    try {
      const ts::ArimaModel model =
          ts::ArimaModel::Fit(intervals, ts::ArimaOrder{1, 0, 1});
      const std::vector<double> f = model.Forecast(1);
      out.interval_seconds = std::max(0.0, f.at(0));
      out.method = "arima";
      out.predicted_start =
          attack_starts.back() + static_cast<std::int64_t>(out.interval_seconds);
      return out;
    } catch (const std::exception&) {
      // Fall through to the median heuristic.
    }
  }
  // Median of the most recent (up to 12) intervals.
  const std::size_t window = std::min<std::size_t>(intervals.size(), 12);
  std::vector<double> recent(intervals.end() - static_cast<std::ptrdiff_t>(window),
                             intervals.end());
  std::sort(recent.begin(), recent.end());
  out.interval_seconds = stats::QuantileSorted(recent, 0.5);
  out.method = "median-interval";
  out.predicted_start =
      attack_starts.back() + static_cast<std::int64_t>(out.interval_seconds);
  return out;
}

StartTimeEvaluation EvaluateStartTimePrediction(const data::Dataset& dataset,
                                                data::Family family,
                                                double tolerance_s) {
  StartTimeEvaluation eval;
  std::vector<double> abs_errors;
  for (const net::IPv4Address& target : dataset.Targets()) {
    std::vector<TimePoint> starts;
    for (std::size_t idx : dataset.AttacksOnTarget(target)) {
      const data::AttackRecord& a = dataset.attacks()[idx];
      if (a.family == family) starts.push_back(a.start_time);
    }
    if (starts.size() < 4) continue;
    std::sort(starts.begin(), starts.end());
    for (std::size_t k = 3; k < starts.size(); ++k) {
      const std::span<const TimePoint> history(starts.data(), k);
      const auto pred = PredictNextAttackStart(history);
      if (!pred) continue;
      abs_errors.push_back(
          std::abs(static_cast<double>(pred->predicted_start - starts[k])));
    }
  }
  eval.predictions = abs_errors.size();
  if (abs_errors.empty()) return eval;
  std::sort(abs_errors.begin(), abs_errors.end());
  eval.median_abs_error_s = stats::QuantileSorted(abs_errors, 0.5);
  std::size_t hits = 0;
  for (double e : abs_errors) {
    if (e <= tolerance_s) ++hits;
  }
  eval.within_tolerance =
      static_cast<double>(hits) / static_cast<double>(abs_errors.size());
  return eval;
}

}  // namespace ddos::core
