#include "core/mitigation_sim.h"

#include <algorithm>
#include <vector>

#include "core/prediction.h"

namespace ddos::core {

MitigationOutcome SimulateMitigation(const data::Dataset& dataset,
                                     const MitigationPolicy& policy) {
  MitigationOutcome outcome;

  for (const net::IPv4Address& target : dataset.Targets()) {
    const auto indices = dataset.AttacksOnTarget(target);
    std::vector<TimePoint> history;  // starts seen so far, chronological
    history.reserve(indices.size());
    for (const std::size_t idx : indices) {
      const data::AttackRecord& attack = dataset.attacks()[idx];
      const double duration = static_cast<double>(attack.duration_seconds());
      ++outcome.attacks;
      outcome.total_attack_seconds += duration;

      // When does mitigation engage for this attack?
      std::int64_t engage_delay = policy.detection_delay_s;
      if (policy.predictive && history.size() >= policy.predictive_min_history) {
        const auto prediction = PredictNextAttackStart(history);
        if (prediction &&
            std::llabs(prediction->predicted_start - attack.start_time) <=
                policy.prediction_grace_s) {
          engage_delay = 0;
          ++outcome.preempted;
        }
      }
      history.push_back(attack.start_time);

      const double covered_begin =
          std::min(duration, static_cast<double>(engage_delay));
      const double covered_end = std::min(
          duration, covered_begin + static_cast<double>(policy.max_engagement_s));
      const double mitigated = covered_end - covered_begin;
      outcome.mitigated_seconds += mitigated;
      if (engage_delay == 0 && mitigated >= duration) ++outcome.fully_covered;
      if (duration >
          static_cast<double>(engage_delay + policy.max_engagement_s)) {
        ++outcome.outlived_engagement;
      }
    }
  }
  if (outcome.total_attack_seconds > 0.0) {
    outcome.coverage = outcome.mitigated_seconds / outcome.total_attack_seconds;
  }
  return outcome;
}

}  // namespace ddos::core
