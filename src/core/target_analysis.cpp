#include "core/target_analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace ddos::core {

FamilyCountryStats CountryStats(const data::Dataset& dataset,
                                data::Family family, int top_k) {
  std::unordered_map<std::string, std::uint64_t> counts;
  for (std::size_t idx : dataset.AttacksOfFamily(family)) {
    ++counts[dataset.attacks()[idx].cc];
  }
  FamilyCountryStats out;
  out.family = family;
  out.total_countries = counts.size();
  std::vector<CountryCount> all;
  all.reserve(counts.size());
  for (const auto& [cc, c] : counts) all.push_back(CountryCount{cc, c});
  std::sort(all.begin(), all.end(), [](const CountryCount& a, const CountryCount& b) {
    if (a.attacks != b.attacks) return a.attacks > b.attacks;
    return a.cc < b.cc;
  });
  if (static_cast<int>(all.size()) > top_k) {
    all.resize(static_cast<std::size_t>(top_k));
  }
  out.top = std::move(all);
  return out;
}

std::vector<CountryCount> GlobalCountryRanking(const data::Dataset& dataset) {
  std::unordered_map<std::string, std::uint64_t> counts;
  for (const data::AttackRecord& a : dataset.attacks()) ++counts[a.cc];
  std::vector<CountryCount> out;
  out.reserve(counts.size());
  for (const auto& [cc, c] : counts) out.push_back(CountryCount{cc, c});
  std::sort(out.begin(), out.end(), [](const CountryCount& a, const CountryCount& b) {
    if (a.attacks != b.attacks) return a.attacks > b.attacks;
    return a.cc < b.cc;
  });
  return out;
}

std::vector<OrgHotspot> OrganizationHotspots(const data::Dataset& dataset,
                                             data::Family family,
                                             TimePoint window_begin,
                                             TimePoint window_end) {
  const bool filtered = window_end.seconds() != 0;
  struct Agg {
    OrgHotspot spot;
    std::unordered_set<std::uint32_t> targets;
  };
  std::unordered_map<std::string, Agg> by_org;
  for (std::size_t idx : dataset.AttacksOfFamily(family)) {
    const data::AttackRecord& a = dataset.attacks()[idx];
    if (filtered &&
        (a.start_time < window_begin || a.start_time >= window_end)) {
      continue;
    }
    Agg& agg = by_org[a.organization];
    if (agg.spot.attacks == 0) {
      agg.spot.organization = a.organization;
      agg.spot.cc = a.cc;
      agg.spot.city = a.city;
      agg.spot.location = a.location;
    }
    ++agg.spot.attacks;
    agg.targets.insert(a.target_ip.bits());
  }
  std::vector<OrgHotspot> out;
  out.reserve(by_org.size());
  for (auto& [org, agg] : by_org) {
    agg.spot.distinct_targets = agg.targets.size();
    out.push_back(std::move(agg.spot));
  }
  std::sort(out.begin(), out.end(), [](const OrgHotspot& a, const OrgHotspot& b) {
    if (a.attacks != b.attacks) return a.attacks > b.attacks;
    return a.organization < b.organization;
  });
  return out;
}

RevisitDistribution ComputeRevisits(const data::Dataset& dataset) {
  RevisitDistribution out;
  std::uint64_t repeat_attacks = 0;
  for (const net::IPv4Address& target : dataset.Targets()) {
    const std::size_t n = dataset.AttacksOnTarget(target).size();
    ++out.targets_total;
    if (n == 1) {
      ++out.targets_once;
    } else if (n <= 5) {
      ++out.targets_2_to_5;
      repeat_attacks += n;
    } else {
      ++out.targets_6_plus;
      repeat_attacks += n;
    }
    out.max_attacks_on_one_target =
        std::max<std::uint64_t>(out.max_attacks_on_one_target, n);
  }
  if (!dataset.attacks().empty()) {
    out.attacks_on_repeat_targets =
        static_cast<double>(repeat_attacks) /
        static_cast<double>(dataset.attacks().size());
  }
  return out;
}

std::vector<std::pair<data::Family, std::uint64_t>> OrganizationsPerFamily(
    const data::Dataset& dataset) {
  std::vector<std::pair<data::Family, std::uint64_t>> out;
  for (const data::Family f : data::ActiveFamilies()) {
    std::unordered_set<std::string> orgs;
    for (std::size_t idx : dataset.AttacksOfFamily(f)) {
      orgs.insert(dataset.attacks()[idx].organization);
    }
    out.emplace_back(f, orgs.size());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace ddos::core
