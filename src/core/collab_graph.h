// The botnet collaboration graph: who attacks with whom.
//
// Section V closes by attributing collaborations to "an underlying
// ecosystem". This module materializes that ecosystem as a graph: botnets
// are nodes, a concurrent-collaboration event adds (weighted) edges between
// every pair of participating botnets. Connected components expose
// coordinated clusters; the degree distribution exposes hubs (the paper's
// Dirtjumper, which every inter-family collaboration involves).
#ifndef DDOSCOPE_CORE_COLLAB_GRAPH_H_
#define DDOSCOPE_CORE_COLLAB_GRAPH_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/collaboration.h"
#include "data/dataset.h"

namespace ddos::core {

class CollaborationGraph {
 public:
  struct Node {
    std::uint32_t botnet_id = 0;
    data::Family family = data::Family::kAldibot;
    std::uint32_t degree = 0;        // distinct collaborators
    std::uint64_t events = 0;        // events participated in
  };
  struct Edge {
    std::uint32_t a = 0;  // botnet ids, a < b
    std::uint32_t b = 0;
    std::uint32_t weight = 0;  // shared events
    bool cross_family = false;
  };

  static CollaborationGraph Build(const data::Dataset& dataset,
                                  std::span<const CollaborationEvent> events);

  std::span<const Node> nodes() const { return nodes_; }
  std::span<const Edge> edges() const { return edges_; }

  // Connected components as lists of botnet ids, largest first.
  std::vector<std::vector<std::uint32_t>> Components() const;

  struct Stats {
    std::size_t nodes = 0;
    std::size_t edges = 0;
    std::size_t cross_family_edges = 0;
    std::size_t components = 0;
    std::size_t largest_component = 0;
    std::uint32_t hub_botnet = 0;          // highest-degree node
    data::Family hub_family = data::Family::kAldibot;
    std::uint32_t hub_degree = 0;
    double mean_degree = 0.0;
  };
  Stats ComputeStats() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::map<std::uint32_t, std::size_t> node_index_;
};

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_COLLAB_GRAPH_H_
