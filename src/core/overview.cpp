#include "core/overview.h"

#include <algorithm>
#include <unordered_set>

#include "stats/descriptive.h"

namespace ddos::core {

std::vector<ProtocolCount> ProtocolBreakdown(
    std::span<const data::AttackRecord> attacks) {
  std::array<std::uint64_t, data::kProtocolCount> counts{};
  for (const data::AttackRecord& a : attacks) {
    ++counts[static_cast<std::size_t>(a.category)];
  }
  std::vector<ProtocolCount> out;
  for (const data::Protocol p : data::AllProtocols()) {
    const std::uint64_t c = counts[static_cast<std::size_t>(p)];
    if (c > 0) out.push_back(ProtocolCount{p, c});
  }
  std::sort(out.begin(), out.end(), [](const ProtocolCount& a, const ProtocolCount& b) {
    return a.attacks > b.attacks;
  });
  return out;
}

std::vector<FamilyProtocolCount> FamilyProtocolTable(
    std::span<const data::AttackRecord> attacks) {
  // counts[protocol][family]
  std::array<std::array<std::uint64_t, data::kFamilyCount>, data::kProtocolCount>
      counts{};
  for (const data::AttackRecord& a : attacks) {
    ++counts[static_cast<std::size_t>(a.category)]
            [static_cast<std::size_t>(a.family)];
  }
  // Paper row order: HTTP, TCP, UDP, UNDETERMINED, ICMP, UNKNOWN, SYN.
  static constexpr data::Protocol kOrder[] = {
      data::Protocol::kHttp,         data::Protocol::kTcp,
      data::Protocol::kUdp,          data::Protocol::kUndetermined,
      data::Protocol::kIcmp,         data::Protocol::kUnknown,
      data::Protocol::kSyn};
  std::vector<FamilyProtocolCount> out;
  for (const data::Protocol p : kOrder) {
    for (const data::Family f : data::AllFamilies()) {
      const std::uint64_t c =
          counts[static_cast<std::size_t>(p)][static_cast<std::size_t>(f)];
      if (c > 0) out.push_back(FamilyProtocolCount{p, f, c});
    }
  }
  return out;
}

WorkloadSummary SummarizeWorkload(const data::Dataset& dataset,
                                  const geo::GeoDatabase& geo_db) {
  WorkloadSummary s;
  std::unordered_set<std::string> attacker_cities, attacker_countries,
      attacker_orgs;
  std::unordered_set<std::uint32_t> attacker_asns;
  for (const data::BotRecord& bot : dataset.bots()) {
    const geo::GeoRecord rec = geo_db.Lookup(bot.ip);
    attacker_cities.emplace(rec.city);
    attacker_countries.emplace(rec.country_code);
    attacker_orgs.emplace(rec.organization);
    attacker_asns.insert(rec.asn.value());
  }
  s.attackers.ips = dataset.bots().size();
  s.attackers.cities = attacker_cities.size();
  s.attackers.countries = attacker_countries.size();
  s.attackers.organizations = attacker_orgs.size();
  s.attackers.asns = attacker_asns.size();

  std::unordered_set<std::uint32_t> target_ips, target_asns;
  std::unordered_set<std::string> target_cities, target_countries, target_orgs;
  std::unordered_set<std::uint32_t> botnet_ids;
  std::unordered_set<int> protocols;
  for (const data::AttackRecord& a : dataset.attacks()) {
    target_ips.insert(a.target_ip.bits());
    target_cities.insert(a.city);
    target_countries.insert(a.cc);
    target_orgs.insert(a.organization);
    target_asns.insert(a.asn.value());
    botnet_ids.insert(a.botnet_id);
    protocols.insert(static_cast<int>(a.category));
  }
  s.victims.ips = target_ips.size();
  s.victims.cities = target_cities.size();
  s.victims.countries = target_countries.size();
  s.victims.organizations = target_orgs.size();
  s.victims.asns = target_asns.size();
  s.ddos_ids = dataset.attacks().size();
  // Table III counts all tracked botnets, not only those seen attacking;
  // datasets loaded from an attack CSV alone fall back to the ids observed.
  s.botnet_ids = dataset.botnets().empty() ? botnet_ids.size()
                                           : dataset.botnets().size();
  s.traffic_types = protocols.size();
  return s;
}

std::vector<FamilyMagnitude> MagnitudeByFamily(
    std::span<const data::AttackRecord> attacks) {
  std::array<std::vector<double>, data::kFamilyCount> magnitudes;
  for (const data::AttackRecord& a : attacks) {
    magnitudes[static_cast<std::size_t>(a.family)].push_back(
        static_cast<double>(a.magnitude));
  }
  std::vector<FamilyMagnitude> out;
  for (const data::Family f : data::ActiveFamilies()) {
    const auto& values = magnitudes[static_cast<std::size_t>(f)];
    if (values.empty()) continue;
    const stats::Summary s = stats::Summarize(values);
    out.push_back(FamilyMagnitude{f, values.size(), s.mean, s.median, s.p99,
                                  s.max});
  }
  std::sort(out.begin(), out.end(),
            [](const FamilyMagnitude& a, const FamilyMagnitude& b) {
              return a.mean > b.mean;
            });
  return out;
}

DailyDistribution ComputeDailyDistribution(
    std::span<const data::AttackRecord> attacks) {
  DailyDistribution out;
  if (attacks.empty()) return out;
  TimePoint min_start = attacks.front().start_time;
  TimePoint max_start = attacks.front().start_time;
  for (const data::AttackRecord& a : attacks) {
    min_start = std::min(min_start, a.start_time);
    max_start = std::max(max_start, a.start_time);
  }
  out.origin = StartOfDay(min_start);
  const std::int64_t days = DayIndex(max_start, out.origin) + 1;
  out.daily.assign(static_cast<std::size_t>(days), 0);

  // Per-day family counts only materialized for the record day.
  std::vector<std::array<std::uint32_t, data::kFamilyCount>> per_family(
      static_cast<std::size_t>(days));
  for (const data::AttackRecord& a : attacks) {
    const auto d = static_cast<std::size_t>(DayIndex(a.start_time, out.origin));
    ++out.daily[d];
    ++per_family[d][static_cast<std::size_t>(a.family)];
  }
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < out.daily.size(); ++d) {
    total += out.daily[d];
    if (out.daily[d] > out.max_per_day) {
      out.max_per_day = out.daily[d];
      out.max_day_index = static_cast<int>(d);
    }
  }
  out.mean_per_day = static_cast<double>(total) / static_cast<double>(days);
  if (out.max_day_index >= 0) {
    const auto& fam = per_family[static_cast<std::size_t>(out.max_day_index)];
    std::size_t best = 0;
    for (std::size_t f = 1; f < fam.size(); ++f) {
      if (fam[f] > fam[best]) best = f;
    }
    out.max_day_dominant_family = static_cast<data::Family>(best);
    out.max_day_dominant_share =
        out.max_per_day == 0
            ? 0.0
            : static_cast<double>(fam[best]) / static_cast<double>(out.max_per_day);
  }
  return out;
}

}  // namespace ddos::core
