#include "core/trends.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "stats/descriptive.h"

namespace ddos::core {

namespace {

double RelativeChange(double from, double to) {
  if (from == 0.0) return 0.0;
  return (to - from) / from;
}

PeriodDelta DeltaBetween(const PeriodStats& from, const PeriodStats& to) {
  PeriodDelta d;
  d.from_period = from.index;
  d.to_period = to.index;
  d.attacks = RelativeChange(static_cast<double>(from.attacks),
                             static_cast<double>(to.attacks));
  d.mean_duration = RelativeChange(from.mean_duration_s, to.mean_duration_s);
  d.mean_magnitude = RelativeChange(from.mean_magnitude, to.mean_magnitude);
  d.distinct_targets = RelativeChange(static_cast<double>(from.distinct_targets),
                                      static_cast<double>(to.distinct_targets));
  return d;
}

}  // namespace

TrendReport ComputeTrends(const data::Dataset& dataset, int period_days) {
  if (period_days <= 0) {
    throw std::invalid_argument("ComputeTrends: period_days must be > 0");
  }
  TrendReport report;
  const auto attacks = dataset.attacks();
  if (attacks.empty()) return report;

  const TimePoint origin = StartOfDay(dataset.window_begin());
  const std::int64_t period_s =
      static_cast<std::int64_t>(period_days) * kSecondsPerDay;
  const int periods = static_cast<int>(
      (dataset.window_end() - origin + period_s - 1) / period_s);

  struct Accumulator {
    std::vector<double> durations;
    stats::StreamingStats magnitude;
    std::unordered_set<std::uint32_t> targets;
    std::array<std::uint64_t, data::kProtocolCount> protocol{};
  };
  std::vector<Accumulator> acc(static_cast<std::size_t>(std::max(periods, 1)));
  for (const data::AttackRecord& a : attacks) {
    const std::int64_t p = (a.start_time - origin) / period_s;
    if (p < 0 || p >= periods) continue;
    Accumulator& slot = acc[static_cast<std::size_t>(p)];
    slot.durations.push_back(static_cast<double>(a.duration_seconds()));
    slot.magnitude.Add(static_cast<double>(a.magnitude));
    slot.targets.insert(a.target_ip.bits());
    ++slot.protocol[static_cast<std::size_t>(a.category)];
  }

  for (int p = 0; p < periods; ++p) {
    const Accumulator& slot = acc[static_cast<std::size_t>(p)];
    PeriodStats period;
    period.index = p;
    period.begin = origin + static_cast<std::int64_t>(p) * period_s;
    period.end = period.begin + period_s;
    period.attacks = slot.durations.size();
    period.distinct_targets = slot.targets.size();
    if (!slot.durations.empty()) {
      const stats::Summary s = stats::Summarize(slot.durations);
      period.mean_duration_s = s.mean;
      period.median_duration_s = s.median;
      period.mean_magnitude = slot.magnitude.mean();
      period.max_magnitude = slot.magnitude.max();
      for (std::size_t proto = 0; proto < data::kProtocolCount; ++proto) {
        period.protocol_share[proto] =
            static_cast<double>(slot.protocol[proto]) /
            static_cast<double>(period.attacks);
      }
    }
    report.periods.push_back(std::move(period));
  }

  for (std::size_t p = 1; p < report.periods.size(); ++p) {
    report.deltas.push_back(
        DeltaBetween(report.periods[p - 1], report.periods[p]));
  }
  if (report.periods.size() >= 2) {
    report.overall =
        DeltaBetween(report.periods.front(), report.periods.back());
  }
  return report;
}

}  // namespace ddos::core
