// Target-side analyses (Section IV-B; Table V, Fig 14).
#ifndef DDOSCOPE_CORE_TARGET_ANALYSIS_H_
#define DDOSCOPE_CORE_TARGET_ANALYSIS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "geo/coord.h"

namespace ddos::core {

// --- Table V: country-level target statistics per family. ---
struct CountryCount {
  std::string cc;
  std::uint64_t attacks = 0;
};

struct FamilyCountryStats {
  data::Family family;
  std::uint64_t total_countries = 0;
  std::vector<CountryCount> top;  // descending, at most `top_k`
};

FamilyCountryStats CountryStats(const data::Dataset& dataset,
                                data::Family family, int top_k = 5);

// Attack counts per target country over all families, descending (the
// paper's global top five: US, RU, DE, UA, NL).
std::vector<CountryCount> GlobalCountryRanking(const data::Dataset& dataset);

// --- Fig 14: organization-level hotspots. ---
struct OrgHotspot {
  std::string organization;
  std::string cc;
  std::string city;
  geo::Coordinate location;
  std::uint64_t attacks = 0;
  std::uint64_t distinct_targets = 0;
};

// Hotspots for one family, optionally restricted to a time window
// (Fig 14 shows Pandora in February 2013); pass zero TimePoints to disable
// the filter. Sorted by attack count, descending.
std::vector<OrgHotspot> OrganizationHotspots(const data::Dataset& dataset,
                                             data::Family family,
                                             TimePoint window_begin = TimePoint(),
                                             TimePoint window_end = TimePoint());

// --- Section III-D: one-time vs repeatedly attacked targets. ---
// "Without such an automatic system in place, the detection is not possible
// for one-time attacking targets. For targets that are repetitively
// attacked, investigation of the attack intervals may be helpful."
struct RevisitDistribution {
  std::uint64_t targets_total = 0;
  std::uint64_t targets_once = 0;       // attacked exactly once
  std::uint64_t targets_2_to_5 = 0;
  std::uint64_t targets_6_plus = 0;
  // Share of all attacks that hit a repeatedly-attacked target, i.e. the
  // fraction where interval-based defenses can apply at all.
  double attacks_on_repeat_targets = 0.0;
  std::uint64_t max_attacks_on_one_target = 0;
};

RevisitDistribution ComputeRevisits(const data::Dataset& dataset);

// Number of distinct organizations attacked per family, descending -
// Dirtjumper has "a wider presence by attacking more organizations than any
// other family" (Section IV-B2).
std::vector<std::pair<data::Family, std::uint64_t>> OrganizationsPerFamily(
    const data::Dataset& dataset);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_TARGET_ANALYSIS_H_
