// Bot-level analyses over the Botlist schema.
//
// The paper's companion study ("Measuring botnets in the wild", reference
// [14]) works at this level; here the Botlist supports three defender-facing
// questions:
//   * how long do bots stay active (lifetime distribution - long-lived bots
//     are worth blacklisting, Section III-D);
//   * where do they sit (country ranking of the attacker side, the Fig 8
//     affinity viewed cumulatively);
//   * are infections shared across families (hosts observed in more than
//     one family's snapshots - evidence of the multi-botnet "ecosystem"
//     Section V infers from collaborations)?
#ifndef DDOSCOPE_CORE_BOT_ANALYSIS_H_
#define DDOSCOPE_CORE_BOT_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "geo/geo_db.h"
#include "stats/descriptive.h"

namespace ddos::core {

// --- Lifetimes (last_seen - first_seen, seconds). ---
struct BotLifetimes {
  stats::Summary summary;
  double fraction_single_snapshot = 0.0;  // lifetime == 0 (seen once)
  double fraction_over_week = 0.0;
};

BotLifetimes ComputeBotLifetimes(const data::Dataset& dataset);

// --- Attacker-side country ranking (by distinct bot IPs). ---
struct BotCountryCount {
  std::string cc;
  std::uint64_t bots = 0;
};

// Descending; covers every bot in the Botlist.
std::vector<BotCountryCount> BotCountryRanking(const data::Dataset& dataset,
                                               const geo::GeoDatabase& geo_db);

// --- Cross-family shared infections. ---
struct SharedBotReport {
  std::uint64_t bots_in_snapshots = 0;   // distinct IPs seen in any snapshot
  std::uint64_t shared_bots = 0;         // seen in >= 2 families' snapshots
  double shared_fraction = 0.0;
  // Family pairs ranked by shared-host count, "familyA+familyB" keys.
  std::vector<std::pair<std::string, std::uint64_t>> top_family_pairs;
};

SharedBotReport AnalyzeSharedBots(const data::Dataset& dataset);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_BOT_ANALYSIS_H_
