// Source and start-time prediction (Section IV-A; Figs 12-13, Table IV).
//
// The geolocation predictor follows the paper's protocol: take a family's
// dispersion series with symmetric snapshots removed, train an ARIMA model
// on the first half, produce rolling one-step predictions for the second
// half, and score them by mean, standard deviation and cosine similarity
// against the ground truth.
//
// The start-time predictor operationalizes the paper's second headline
// finding ("strong patterns of inter-attack time interval, allowing
// accurate start time prediction of the next anticipated attacks"): given
// the attack history of one target, it predicts when the next attack
// begins, from either the median recent interval or an ARIMA fit on the
// interval sequence.
#ifndef DDOSCOPE_CORE_PREDICTION_H_
#define DDOSCOPE_CORE_PREDICTION_H_

#include <optional>
#include <vector>

#include "data/dataset.h"
#include "timeseries/arima.h"

namespace ddos::core {

struct GeoPredictionConfig {
  double train_fraction = 0.5;
  // Order used when `auto_order` is false. ARIMA(2,0,1) mirrors the small
  // linear models the paper's tooling defaults to for stationary series.
  ts::ArimaOrder order{2, 0, 1};
  bool auto_order = false;  // AIC grid search over p<=3, d<=1, q<=2
  int min_series_length = 60;
};

struct GeoPredictionResult {
  ts::ArimaOrder order;
  std::vector<double> truth;       // held-out ground-truth values
  std::vector<double> prediction;  // rolling one-step predictions
  std::vector<double> errors;      // prediction - truth, chronological
  double prediction_mean = 0.0;    // Table IV columns
  double prediction_std = 0.0;
  double truth_mean = 0.0;
  double truth_std = 0.0;
  double cosine_similarity = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
};

// Runs the protocol on a prepared (asymmetric-only) dispersion value series.
// Returns nullopt when the series is too short to train (the paper excludes
// Darkshell for exactly this reason).
std::optional<GeoPredictionResult> PredictDispersion(
    std::span<const double> series, const GeoPredictionConfig& config = {});

// --- Next-attack start-time prediction on a target's history. ---
struct StartTimePrediction {
  TimePoint predicted_start;
  double interval_seconds = 0.0;  // the predicted gap
  const char* method = "";        // "median-interval" or "arima"
};

// Requires at least 3 attacks on the target; uses ARIMA on the interval
// sequence when there is enough history (>= 24 intervals), otherwise the
// median of recent intervals.
std::optional<StartTimePrediction> PredictNextAttackStart(
    std::span<const TimePoint> attack_starts);

// Evaluation harness for the start-time predictor: walks each target's
// history, predicts every attack from its predecessors, and reports the
// median absolute error in seconds plus the fraction of predictions within
// `tolerance_s` of the true start.
struct StartTimeEvaluation {
  std::size_t predictions = 0;
  double median_abs_error_s = 0.0;
  double within_tolerance = 0.0;
};

StartTimeEvaluation EvaluateStartTimePrediction(const data::Dataset& dataset,
                                                data::Family family,
                                                double tolerance_s = 1800.0);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_PREDICTION_H_
