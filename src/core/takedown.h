// Botnet takedown analysis.
//
// The paper's related work highlights rza (Nadji et al.): postmortem
// analysis and recommendations for botnet takedowns. This module brings
// that question to the characterized trace: which botnet generations are
// worth taking down first? Utility combines the botnet's own attack volume
// (attack-seconds) with its role in the collaboration ecosystem (events it
// participates in), and a replay measures how much attack activity a top-k
// takedown would have removed.
#ifndef DDOSCOPE_CORE_TAKEDOWN_H_
#define DDOSCOPE_CORE_TAKEDOWN_H_

#include <cstdint>
#include <vector>

#include "core/collaboration.h"
#include "data/dataset.h"

namespace ddos::core {

struct TakedownCandidate {
  std::uint32_t botnet_id = 0;
  data::Family family = data::Family::kAldibot;
  std::uint64_t attacks = 0;
  double attack_seconds = 0.0;
  std::uint64_t collaboration_events = 0;
  // attack_seconds + collaboration_weight * events (the ranking key).
  double utility = 0.0;
};

struct TakedownConfig {
  // How many attack-seconds of utility one collaboration event is worth;
  // collaborations signal shared infrastructure, so disabling a hub damages
  // more than its own attacks.
  double collaboration_weight = 3600.0;
};

// All botnets observed attacking, ranked by takedown utility (descending).
std::vector<TakedownCandidate> RankTakedowns(
    const data::Dataset& dataset, std::span<const CollaborationEvent> events,
    const TakedownConfig& config = {});

struct TakedownImpact {
  std::size_t botnets_removed = 0;
  double attack_seconds_removed = 0.0;
  double attack_seconds_total = 0.0;
  double fraction_removed = 0.0;          // of attack-seconds
  std::uint64_t attacks_removed = 0;
  std::uint64_t collaborations_broken = 0;  // events losing a participant
};

// Replays the trace with the top-k ranked botnets removed.
TakedownImpact SimulateTakedown(const data::Dataset& dataset,
                                std::span<const CollaborationEvent> events,
                                std::span<const TakedownCandidate> ranking,
                                std::size_t top_k);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_TAKEDOWN_H_
