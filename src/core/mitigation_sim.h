// Mitigation replay: how much attack time would a defense policy actually
// absorb on this trace?
//
// Section III-D argues that the four-hour duration profile demands
// *automatic* mitigation, and Section V's summary suggests exploiting the
// consecutive-attack patterns to "prepare for the next rounds of attacks".
// This simulator replays the attack table against three policies and
// reports the fraction of attack-seconds covered:
//
//   reactive    - mitigation engages `detection_delay` after each attack
//                 starts and stays up for at most `max_engagement`;
//   predictive  - additionally pre-arms a target when the next-attack
//                 predictor (per-target interval history) expects an attack
//                 within `prediction_grace` of its actual start, removing
//                 the detection delay for that attack;
//   blacklist   - scales the reactive coverage of each attack by the share
//                 of its magnitude attributable to blacklisted bots (a
//                 crude volume model: blocking a bot removes its share).
#ifndef DDOSCOPE_CORE_MITIGATION_SIM_H_
#define DDOSCOPE_CORE_MITIGATION_SIM_H_

#include <cstdint>

#include "data/dataset.h"
#include "geo/geo_db.h"

namespace ddos::core {

struct MitigationPolicy {
  std::int64_t detection_delay_s = 300;       // alarm-to-mitigation latency
  std::int64_t max_engagement_s = 4 * 3600;   // Section III-D's window
  bool predictive = false;                    // pre-arm from interval history
  std::int64_t prediction_grace_s = 1800;     // |predicted - actual| bound
  std::size_t predictive_min_history = 4;     // attacks needed to forecast
};

struct MitigationOutcome {
  std::uint64_t attacks = 0;
  double total_attack_seconds = 0.0;
  double mitigated_seconds = 0.0;
  double coverage = 0.0;              // mitigated / total
  std::uint64_t fully_covered = 0;    // attacks covered from start to end
  std::uint64_t preempted = 0;        // attacks caught by the predictor
  std::uint64_t outlived_engagement = 0;  // attacks longer than the window
};

// Replays all attacks under the policy. Engagements are per (target,
// attack); overlapping attacks on one target each get their own engagement
// (a simplification that favors neither policy).
MitigationOutcome SimulateMitigation(const data::Dataset& dataset,
                                     const MitigationPolicy& policy);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_MITIGATION_SIM_H_
