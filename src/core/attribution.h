// Behavioral attack attribution.
//
// The paper's Section V summary calls for "defenses that employ this
// insight for attack attribution with an in-depth understanding of the
// participating hosts in each family". This module implements that next
// step: it distills a family's observable behaviour (protocol mix, duration
// and magnitude laws, inter-attack rhythm, target-country affinity) into a
// fixed-length fingerprint, learns per-family centroids from a training
// subset of botnets, and attributes unseen botnets to families by cosine
// similarity - no malware hashes or C&C knowledge required, exactly the
// information a victim-side defender has.
#ifndef DDOSCOPE_CORE_ATTRIBUTION_H_
#define DDOSCOPE_CORE_ATTRIBUTION_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace ddos::core {

// Fixed layout: protocol shares (7) + log-duration histogram (8, decades
// 10^0.5 steps over [10, 10^4.5... capped]) + log-magnitude histogram (6)
// + interval histogram (8) + hashed target-country buckets (12).
inline constexpr std::size_t kFingerprintDims = 7 + 8 + 6 + 8 + 12;

struct BehaviorFingerprint {
  std::array<double, kFingerprintDims> values{};
  std::size_t attacks = 0;  // how many attacks back the fingerprint

  // Cosine similarity between fingerprints (0 when either is empty).
  double Similarity(const BehaviorFingerprint& other) const;
};

// Fingerprint of a set of attacks (indices into dataset.attacks()).
// Each block is L1-normalized so no single feature family dominates.
BehaviorFingerprint FingerprintAttacks(const data::Dataset& dataset,
                                       std::span<const std::size_t> indices);

class FamilyClassifier {
 public:
  // Learns per-family centroids from the given attacks, grouped by family.
  static FamilyClassifier Train(const data::Dataset& dataset,
                                std::span<const std::size_t> attack_indices);

  // The most similar family centroid, or nullopt if nothing was trained or
  // the fingerprint is empty.
  std::optional<data::Family> Classify(const BehaviorFingerprint& fp) const;

  // Families with a trained centroid.
  std::vector<data::Family> TrainedFamilies() const;

 private:
  std::array<BehaviorFingerprint, data::kFamilyCount> centroids_{};
  std::array<bool, data::kFamilyCount> trained_{};
};

// Leave-botnets-out evaluation: per family, a fraction of botnet ids is
// held out; centroids are trained on the rest, then every held-out botnet
// (with at least `min_attacks` attacks) is fingerprinted and classified.
struct AttributionEvaluation {
  std::size_t botnets_evaluated = 0;
  std::size_t correct = 0;
  double accuracy = 0.0;
  // confusion[truth][predicted], over active families.
  std::array<std::array<std::uint32_t, data::kFamilyCount>, data::kFamilyCount>
      confusion{};
};

AttributionEvaluation EvaluateAttribution(const data::Dataset& dataset,
                                          double holdout_fraction = 0.3,
                                          std::size_t min_attacks = 5,
                                          std::uint64_t seed = 7);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_ATTRIBUTION_H_
