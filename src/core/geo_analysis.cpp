#include "core/geo_analysis.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "geo/lookup_cache.h"

namespace ddos::core {

std::vector<DispersionPoint> DispersionSeries(const data::Dataset& dataset,
                                              const geo::GeoDatabase& geo_db,
                                              data::Family family) {
  std::vector<DispersionPoint> out;
  const auto indices = dataset.SnapshotsOfFamily(family);
  out.reserve(indices.size());
  // A bot recurs in every snapshot of its lifetime, so memoize by address
  // for the duration of the pass (geo/lookup_cache.h).
  geo::GeoLookupCache lookups(geo_db);
  std::vector<geo::Coordinate> coords;
  for (std::size_t idx : indices) {
    const data::SnapshotRecord& snap = dataset.snapshots()[idx];
    if (snap.bot_ips.size() < 2) continue;
    coords.clear();
    coords.reserve(snap.bot_ips.size());
    for (const net::IPv4Address& ip : snap.bot_ips) {
      coords.push_back(lookups.Lookup(ip).location);
    }
    const geo::Dispersion d = geo::ComputeDispersion(coords);
    out.push_back(DispersionPoint{snap.time, d.value_km, d.signed_sum_km,
                                  d.center, coords.size()});
  }
  return out;
}

std::vector<double> DispersionValues(std::span<const DispersionPoint> series) {
  std::vector<double> out;
  out.reserve(series.size());
  for (const DispersionPoint& p : series) out.push_back(p.value_km);
  return out;
}

double SymmetricFraction(std::span<const double> values, double threshold_km) {
  if (values.empty()) return 0.0;
  std::size_t symmetric = 0;
  for (double v : values) {
    if (v < threshold_km) ++symmetric;
  }
  return static_cast<double>(symmetric) / static_cast<double>(values.size());
}

std::vector<double> AsymmetricValues(std::span<const double> values,
                                     double threshold_km) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    if (v >= threshold_km) out.push_back(v);
  }
  return out;
}

std::vector<WeeklyShift> ShiftAnalysis(const data::Dataset& dataset,
                                       const geo::GeoDatabase& geo_db,
                                       std::span<const data::Family> families) {
  std::vector<data::Family> wanted(families.begin(), families.end());
  if (wanted.empty()) {
    wanted.assign(data::ActiveFamilies().begin(), data::ActiveFamilies().end());
  }

  // Week indexing is anchored at the first snapshot.
  const auto snapshots = dataset.snapshots();
  if (snapshots.empty()) return {};
  const TimePoint origin = StartOfDay(snapshots.front().time);

  std::vector<WeeklyShift> out;
  geo::GeoLookupCache lookups(geo_db);
  auto week_slot = [&](int week) -> WeeklyShift& {
    while (static_cast<int>(out.size()) <= week) {
      out.push_back(WeeklyShift{static_cast<int>(out.size()), 0, 0, 0});
    }
    return out[static_cast<std::size_t>(week)];
  };

  for (const data::Family f : wanted) {
    // A country is "new" for the whole week in which the family first
    // sources a bot from it; from the following week on it is "existing".
    std::unordered_set<std::string> seen_before_week;
    std::unordered_set<std::string> introduced_this_week;
    int current_week = -1;
    for (std::size_t idx : dataset.SnapshotsOfFamily(f)) {
      const data::SnapshotRecord& snap = snapshots[idx];
      const int week = static_cast<int>(WeekIndex(snap.time, origin));
      if (week != current_week) {
        seen_before_week.insert(introduced_this_week.begin(),
                                introduced_this_week.end());
        introduced_this_week.clear();
        current_week = week;
      }
      WeeklyShift& slot = week_slot(week);
      for (const net::IPv4Address& ip : snap.bot_ips) {
        const std::string cc(lookups.Lookup(ip).country_code);
        if (seen_before_week.count(cc) > 0) {
          ++slot.bots_existing_countries;
        } else {
          ++slot.bots_new_countries;
          if (introduced_this_week.insert(cc).second) ++slot.new_countries;
        }
      }
    }
  }
  return out;
}

}  // namespace ddos::core
