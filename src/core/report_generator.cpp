#include "core/report_generator.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/strings.h"
#include "core/collaboration.h"
#include "core/defense.h"
#include "core/durations.h"
#include "core/geo_analysis.h"
#include "core/intervals.h"
#include "core/overview.h"
#include "core/report.h"
#include "core/target_analysis.h"
#include "stats/descriptive.h"

namespace ddos::core {

namespace {

void AppendSection(std::string& out, const std::string& heading) {
  out += "\n## " + heading + "\n\n";
}

std::string MarkdownTable(const std::vector<std::string>& header,
                          const std::vector<std::vector<std::string>>& rows) {
  auto render_row = [](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (const std::string& cell : cells) line += " " + cell + " |";
    line += "\n";
    return line;
  };
  std::string out = render_row(header);
  std::vector<std::string> rule(header.size(), "---");
  out += render_row(rule);
  for (const auto& row : rows) out += render_row(row);
  return out;
}

}  // namespace

std::string GenerateCharacterizationReport(const data::Dataset& dataset,
                                           const geo::GeoDatabase& geo_db,
                                           const ReportOptions& options) {
  std::string out = "# " + options.title + "\n";
  const auto attacks = dataset.attacks();
  if (attacks.empty()) {
    out += "\nThe dataset contains no attacks.\n";
    return out;
  }
  out += StrFormat("\nObservation window: %s .. %s (%lld days).\n",
                   dataset.window_begin().ToDateString().c_str(),
                   dataset.window_end().ToDateString().c_str(),
                   static_cast<long long>(
                       DayIndex(dataset.window_end(), dataset.window_begin()) + 1));

  // --- Overview ---
  AppendSection(out, "Workload overview");
  const WorkloadSummary summary = SummarizeWorkload(dataset, geo_db);
  out += MarkdownTable(
      {"", "attackers", "victims"},
      {{"IPs", std::to_string(summary.attackers.ips),
        std::to_string(summary.victims.ips)},
       {"cities", std::to_string(summary.attackers.cities),
        std::to_string(summary.victims.cities)},
       {"countries", std::to_string(summary.attackers.countries),
        std::to_string(summary.victims.countries)},
       {"organizations", std::to_string(summary.attackers.organizations),
        std::to_string(summary.victims.organizations)},
       {"ASNs", std::to_string(summary.attackers.asns),
        std::to_string(summary.victims.asns)}});
  out += StrFormat("\n%zu attacks by %llu botnets over %llu traffic types.\n",
                   attacks.size(),
                   static_cast<unsigned long long>(summary.botnet_ids),
                   static_cast<unsigned long long>(summary.traffic_types));

  out += "\nAttack transports:\n\n";
  std::vector<std::vector<std::string>> protocol_rows;
  for (const ProtocolCount& pc : ProtocolBreakdown(attacks)) {
    protocol_rows.push_back({std::string(data::ProtocolName(pc.protocol)),
                             std::to_string(pc.attacks)});
  }
  out += MarkdownTable({"protocol", "attacks"}, protocol_rows);

  out += "\nAttack magnitudes (participating bot IPs) per family:\n\n";
  std::vector<std::vector<std::string>> magnitude_rows;
  for (const FamilyMagnitude& m : MagnitudeByFamily(attacks)) {
    magnitude_rows.push_back({std::string(data::FamilyName(m.family)),
                              std::to_string(m.attacks), Humanize(m.mean),
                              Humanize(m.median), Humanize(m.max)});
  }
  out += MarkdownTable({"family", "attacks", "mean", "median", "max"},
                       magnitude_rows);

  // --- Temporal behaviour ---
  AppendSection(out, "Temporal behaviour");
  const DailyDistribution daily = ComputeDailyDistribution(attacks);
  out += StrFormat(
      "Mean %.1f attacks/day; the record day (%s) saw %u attacks, %.0f%% of "
      "them by %s.\n",
      daily.mean_per_day,
      (daily.origin + static_cast<std::int64_t>(daily.max_day_index) *
                          kSecondsPerDay)
          .ToDateString()
          .c_str(),
      daily.max_per_day, daily.max_day_dominant_share * 100.0,
      std::string(data::FamilyName(daily.max_day_dominant_family)).c_str());

  const IntervalStats interval_stats =
      ComputeIntervalStats(AllAttackIntervals(dataset));
  out += StrFormat(
      "\n%.0f%% of consecutive attacks start within 60 s; the 80th percentile "
      "interval is %s s.\n",
      interval_stats.fraction_concurrent * 100.0,
      Humanize(interval_stats.p80_seconds).c_str());

  const DurationStats duration_stats =
      ComputeDurationStats(AttackDurations(attacks));
  out += StrFormat(
      "\nDurations: mean %s s, median %s s, sd %s s; %.0f%% of attacks end "
      "within %s s.\n",
      Humanize(duration_stats.summary.mean).c_str(),
      Humanize(duration_stats.summary.median).c_str(),
      Humanize(duration_stats.summary.stddev).c_str(), 80.0,
      Humanize(duration_stats.p80_seconds).c_str());

  // --- Geolocation ---
  if (options.include_geolocation && !dataset.snapshots().empty()) {
    AppendSection(out, "Source geolocation");
    std::vector<std::vector<std::string>> geo_rows;
    for (const data::Family f : data::ActiveFamilies()) {
      const auto series = DispersionSeries(dataset, geo_db, f);
      if (series.size() < options.min_snapshots) continue;
      const auto values = DispersionValues(series);
      const auto asym = AsymmetricValues(values);
      const auto asym_summary = stats::Summarize(asym);
      geo_rows.push_back({std::string(data::FamilyName(f)),
                          std::to_string(values.size()),
                          StrFormat("%.1f%%", SymmetricFraction(values) * 100.0),
                          Humanize(asym_summary.mean),
                          Humanize(asym_summary.stddev)});
    }
    out += MarkdownTable({"family", "snapshots", "symmetric", "asym mean (km)",
                          "asym sd (km)"},
                         geo_rows);
    const auto shifts = ShiftAnalysis(dataset, geo_db, {});
    std::uint64_t existing = 0, fresh = 0;
    for (std::size_t i = 1; i < shifts.size(); ++i) {
      existing += shifts[i].bots_existing_countries;
      fresh += shifts[i].bots_new_countries;
    }
    if (fresh > 0) {
      out += StrFormat(
          "\nSource affinity: %.0fx more weekly bot activity from previously "
          "seen countries than from new ones.\n",
          static_cast<double>(existing) / static_cast<double>(fresh));
    }
  }

  // --- Targets ---
  AppendSection(out, "Targets");
  std::vector<std::vector<std::string>> country_rows;
  const auto ranking = GlobalCountryRanking(dataset);
  for (std::size_t i = 0;
       i < std::min<std::size_t>(ranking.size(),
                                 static_cast<std::size_t>(options.top_countries));
       ++i) {
    country_rows.push_back({std::to_string(i + 1), ranking[i].cc,
                            std::to_string(ranking[i].attacks)});
  }
  out += MarkdownTable({"rank", "country", "attacks"}, country_rows);

  out += "\nMost-attacked organizations:\n\n";
  std::vector<std::vector<std::string>> org_rows;
  std::size_t printed = 0;
  // Cross-family hotspot list: attacks grouped by organization.
  std::map<std::string, std::pair<std::uint64_t, std::string>> orgs;
  for (const data::AttackRecord& a : attacks) {
    auto& entry = orgs[a.organization];
    ++entry.first;
    entry.second = a.cc;
  }
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::string>>>
      sorted_orgs(orgs.begin(), orgs.end());
  std::sort(sorted_orgs.begin(), sorted_orgs.end(),
            [](const auto& a, const auto& b) {
              return a.second.first > b.second.first;
            });
  for (const auto& [org, info] : sorted_orgs) {
    if (printed++ >= static_cast<std::size_t>(options.top_organizations)) break;
    org_rows.push_back({org, info.second, std::to_string(info.first)});
  }
  out += MarkdownTable({"organization", "cc", "attacks"}, org_rows);
  const RevisitDistribution revisits = ComputeRevisits(dataset);
  out += StrFormat(
      "\n%llu of %llu targets were hit exactly once (no interval history for "
      "defenses); %.0f%% of all attacks landed on repeatedly-attacked "
      "targets.\n",
      static_cast<unsigned long long>(revisits.targets_once),
      static_cast<unsigned long long>(revisits.targets_total),
      revisits.attacks_on_repeat_targets * 100.0);

  // --- Collaborations ---
  if (options.include_collaborations) {
    AppendSection(out, "Collaborations");
    const auto events = DetectConcurrentCollaborations(dataset);
    const CollaborationTable table = TabulateCollaborations(events);
    std::vector<std::vector<std::string>> collab_rows;
    for (const data::Family f : data::ActiveFamilies()) {
      const auto intra = table.intra[static_cast<std::size_t>(f)];
      const auto inter = table.inter[static_cast<std::size_t>(f)];
      if (intra == 0 && inter == 0) continue;
      collab_rows.push_back({std::string(data::FamilyName(f)),
                             std::to_string(intra), std::to_string(inter)});
    }
    out += MarkdownTable({"family", "intra-family", "inter-family"}, collab_rows);
    const auto chains = DetectConsecutiveChains(dataset);
    const ChainStats chain_stats = SummarizeChains(dataset, chains);
    out += StrFormat(
        "\n%zu multistage chains; the longest runs %zu consecutive attacks "
        "(%s) over %lld s.\n",
        chain_stats.chains, chain_stats.longest_length,
        chain_stats.chains > 0
            ? std::string(data::FamilyName(chain_stats.longest_family)).c_str()
            : "-",
        static_cast<long long>(chain_stats.longest_span_s));
  }

  // --- Defense derivations ---
  if (options.include_defense) {
    AppendSection(out, "Defense parameters");
    const MitigationWindow window = RecommendMitigationWindow(attacks, 0.80);
    out += StrFormat(
        "An automatic mitigation engaged for %s s outlasts %.0f%% of "
        "attacks.\n",
        Humanize(window.window_seconds).c_str(),
        window.attacks_covered_fraction * 100.0);
    const auto watch = BuildWatchList(dataset, 10, 4);
    if (!watch.empty()) {
      out += StrFormat(
          "\nWatch list: %zu repeatedly-attacked targets have predictable "
          "next-attack times; the busiest (%s, %zu attacks) is expected again "
          "at %s.\n",
          watch.size(), watch.front().target.ToString().c_str(),
          watch.front().attack_count,
          watch.front().predicted_next.ToString().c_str());
    }
  }
  return out;
}

void WriteCharacterizationReport(const std::string& path,
                                 const data::Dataset& dataset,
                                 const geo::GeoDatabase& geo_db,
                                 const ReportOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteCharacterizationReport: cannot open " + path);
  }
  out << GenerateCharacterizationReport(dataset, geo_db, options);
}

}  // namespace ddos::core
