// Inter-attack interval analyses (Section III-B; Figs 3-5).
//
// The paper defines the interval like an inter-arrival time: the gap between
// two consecutive attack starts, computed either across all attacks
// chronologically or restricted to one family (or one target). Attacks with
// an interval of at most 60 seconds are "concurrent"/"simultaneous".
#ifndef DDOSCOPE_CORE_INTERVALS_H_
#define DDOSCOPE_CORE_INTERVALS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

namespace ddos::core {

inline constexpr std::int64_t kConcurrencyWindowS = 60;

// Gaps (seconds) between consecutive entries of an ascending start-time
// sequence. n starts yield n-1 intervals.
std::vector<double> IntervalsFromStarts(std::span<const TimePoint> starts);

// Intervals across all attacks, chronological (the "all" curve of Fig 3).
std::vector<double> AllAttackIntervals(const data::Dataset& dataset);

// Intervals within one family (Fig 3's family-based curve aggregates these
// over all families; Fig 5 plots them per family).
std::vector<double> FamilyIntervals(const data::Dataset& dataset, data::Family f);

// Intervals between consecutive attacks on one target, across families.
std::vector<double> TargetIntervals(const data::Dataset& dataset,
                                    net::IPv4Address target);

struct IntervalStats {
  stats::Summary summary;
  double fraction_concurrent = 0.0;  // interval <= 60 s
  double p80_seconds = 0.0;          // 80th percentile
  double fraction_1k_10k = 0.0;      // share inside [1000, 10000] s
};

IntervalStats ComputeIntervalStats(std::span<const double> intervals);

// --- Fig 4: per-family interval clustering (simultaneous excluded). ---
struct IntervalCluster {
  std::string label;
  double lo_s = 0.0;
  double hi_s = 0.0;
  std::uint64_t count = 0;
};

// Buckets chosen to surface the paper's common modes (6-7 min, 20-40 min,
// 2-3 h) within the minutes/hours/days/weeks grouping of Fig 4.
std::vector<IntervalCluster> ClusterIntervals(std::span<const double> intervals);

// --- Section III-B: concurrent attack groups. ---
// A maximal run of chronologically consecutive attacks whose successive
// start gaps are all <= 60 s.
struct ConcurrentGroup {
  std::vector<std::size_t> attack_indices;  // into dataset.attacks()
  bool single_family = true;
};

struct ConcurrencyReport {
  std::vector<ConcurrentGroup> groups;     // size >= 2 only
  std::uint64_t single_family_groups = 0;  // paper: 3,692
  std::uint64_t multi_family_groups = 0;   // paper: 956
  // Families that launch same-second attacks (paper: 7 of 10).
  std::vector<data::Family> simultaneous_families;
  // Cross-family co-occurrence counts, keyed by family-name pair
  // (lexicographic), descending; DJ+Blackenergy and DJ+Pandora lead.
  std::vector<std::pair<std::string, std::uint64_t>> top_family_pairs;
};

ConcurrencyReport AnalyzeConcurrency(const data::Dataset& dataset);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_INTERVALS_H_
