// Attack-duration analyses (Section III-C; Figs 6-7).
#ifndef DDOSCOPE_CORE_DURATIONS_H_
#define DDOSCOPE_CORE_DURATIONS_H_

#include <vector>

#include "data/dataset.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"

namespace ddos::core {

// Durations (seconds) of all attacks, chronological.
std::vector<double> AttackDurations(std::span<const data::AttackRecord> attacks);

struct DurationStats {
  stats::Summary summary;       // paper: mean 10,308 s / median 1,766 s / sd 18,475 s
  double p80_seconds = 0.0;     // paper: 13,882 s (~4 h)
  double fraction_100_10000 = 0.0;  // density band visible in Fig 6
  double fraction_under_4h = 0.0;
};

DurationStats ComputeDurationStats(std::span<const double> durations);

// Fig 6 raw series: (day index, duration seconds) per attack, ordered by
// start time; simultaneous attacks keep their target-IP order from the
// dataset sort.
struct DurationPoint {
  int day = 0;
  double duration_s = 0.0;
};
std::vector<DurationPoint> DurationTimeline(
    std::span<const data::AttackRecord> attacks, TimePoint origin);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_DURATIONS_H_
