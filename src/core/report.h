// ASCII rendering of tables, bar charts and CDF curves.
//
// The benchmark harness regenerates every table and figure of the paper as
// text; these helpers keep that output uniform and legible in a terminal.
#ifndef DDOSCOPE_CORE_REPORT_H_
#define DDOSCOPE_CORE_REPORT_H_

#include <string>
#include <vector>

#include "stats/ecdf.h"
#include "stats/histogram.h"

namespace ddos::core {

// Fixed-width text table. Column widths auto-size to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Renders with a header rule; every row padded per column.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal bar chart: one row per (label, value), bars scaled to
// `width` characters at the maximum value.
std::string RenderBars(const std::vector<std::pair<std::string, double>>& items,
                       int width = 48);

// CDF curve as rows of "x  F(x)  bar", on a log or linear grid.
std::string RenderCdf(const stats::Ecdf& ecdf, int points, bool log_x,
                      double log_floor = 1.0, int width = 40);

// Histogram as rows of "[lo, hi)  count  bar".
std::string RenderHistogram(const stats::Histogram& hist, int width = 40);

// "12.3k" / "4.56M" style compact numbers for chart labels.
std::string Humanize(double value);

}  // namespace ddos::core

#endif  // DDOSCOPE_CORE_REPORT_H_
