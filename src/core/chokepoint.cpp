#include "core/chokepoint.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "geo/lookup_cache.h"

namespace ddos::core {

namespace {

// Snapshot index nearest to `when` for one family, by linear scan over the
// (chronological) per-family snapshot list with binary search.
const data::SnapshotRecord* SnapshotNear(const data::Dataset& dataset,
                                         data::Family family, TimePoint when) {
  const auto indices = dataset.SnapshotsOfFamily(family);
  if (indices.empty()) return nullptr;
  const auto snapshots = dataset.snapshots();
  const auto it = std::lower_bound(
      indices.begin(), indices.end(), when,
      [&](std::size_t idx, TimePoint t) { return snapshots[idx].time < t; });
  if (it == indices.end()) return &snapshots[indices.back()];
  if (it == indices.begin()) return &snapshots[indices.front()];
  const data::SnapshotRecord& hi = snapshots[*it];
  const data::SnapshotRecord& lo = snapshots[*(it - 1)];
  return (hi.time - when) < (when - lo.time) ? &hi : &lo;
}

}  // namespace

ChokepointReport AnalyzeChokepoints(const data::Dataset& dataset,
                                    const geo::GeoDatabase& geo_db,
                                    const net::AsGraph& as_graph,
                                    const ChokepointConfig& config) {
  ChokepointReport report;
  Rng rng(config.seed ^ 0xc40cull);
  // Sampled bots repeat across attacks of the same snapshot window; resolve
  // each address's ASN once per analysis pass (geo/lookup_cache.h).
  geo::GeoLookupCache lookups(geo_db);

  // paths_by_as[asn] = number of sampled attack paths carrying the AS as
  // transit. A path is also remembered as the set of transit ASes it
  // touches so cumulative coverage can be computed exactly on the sample.
  std::unordered_map<std::uint32_t, std::uint64_t> paths_by_as;
  std::vector<std::vector<std::uint32_t>> path_transit_sets;

  for (const data::Family family : data::ActiveFamilies()) {
    const auto attack_indices = dataset.AttacksOfFamily(family);
    if (attack_indices.empty()) continue;
    const std::size_t step =
        config.attacks_per_family > 0 &&
                attack_indices.size() >
                    static_cast<std::size_t>(config.attacks_per_family)
            ? attack_indices.size() /
                  static_cast<std::size_t>(config.attacks_per_family)
            : 1;
    for (std::size_t i = 0; i < attack_indices.size(); i += step) {
      const data::AttackRecord& attack = dataset.attacks()[attack_indices[i]];
      const data::SnapshotRecord* snap =
          SnapshotNear(dataset, family, attack.start_time);
      if (snap == nullptr || snap->bot_ips.empty()) continue;
      if (!as_graph.contains(attack.asn)) continue;
      for (int b = 0; b < config.bots_per_attack; ++b) {
        const net::IPv4Address bot = snap->bot_ips[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(snap->bot_ips.size()) - 1))];
        const net::Asn bot_asn = lookups.Lookup(bot).asn;
        if (!as_graph.contains(bot_asn)) continue;
        const std::vector<net::Asn> path = as_graph.Path(bot_asn, attack.asn);
        if (path.size() <= 2) continue;  // no transit segment
        std::vector<std::uint32_t> transit;
        transit.reserve(path.size() - 2);
        for (std::size_t h = 1; h + 1 < path.size(); ++h) {
          transit.push_back(path[h].value());
          ++paths_by_as[path[h].value()];
        }
        path_transit_sets.push_back(std::move(transit));
      }
    }
  }
  report.total_paths = path_transit_sets.size();

  report.ranking.reserve(paths_by_as.size());
  for (const auto& [asn_bits, count] : paths_by_as) {
    const net::AsNode& node = as_graph.at(net::Asn(asn_bits));
    report.ranking.push_back(ChokepointEntry{node.asn, node.tier,
                                             node.organization, node.country,
                                             count});
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const ChokepointEntry& a, const ChokepointEntry& b) {
              if (a.paths_carried != b.paths_carried) {
                return a.paths_carried > b.paths_carried;
              }
              return a.asn < b.asn;
            });

  // Exact cumulative coverage on the sampled paths for the top 32 ASes.
  const std::size_t depth = std::min<std::size_t>(report.ranking.size(), 32);
  report.cumulative_coverage.reserve(depth);
  std::unordered_set<std::uint32_t> chosen;
  std::vector<bool> covered(path_transit_sets.size(), false);
  std::uint64_t covered_count = 0;
  for (std::size_t k = 0; k < depth; ++k) {
    chosen.insert(report.ranking[k].asn.value());
    for (std::size_t p = 0; p < path_transit_sets.size(); ++p) {
      if (covered[p]) continue;
      for (const std::uint32_t asn : path_transit_sets[p]) {
        if (chosen.count(asn) > 0) {
          covered[p] = true;
          ++covered_count;
          break;
        }
      }
    }
    report.cumulative_coverage.push_back(
        report.total_paths == 0
            ? 0.0
            : static_cast<double>(covered_count) /
                  static_cast<double>(report.total_paths));
  }
  return report;
}

}  // namespace ddos::core
