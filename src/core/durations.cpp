#include "core/durations.h"

namespace ddos::core {

std::vector<double> AttackDurations(std::span<const data::AttackRecord> attacks) {
  std::vector<double> out;
  out.reserve(attacks.size());
  for (const data::AttackRecord& a : attacks) {
    out.push_back(static_cast<double>(a.duration_seconds()));
  }
  return out;
}

DurationStats ComputeDurationStats(std::span<const double> durations) {
  DurationStats s;
  s.summary = stats::Summarize(durations);
  if (durations.empty()) return s;
  std::uint64_t band = 0;
  std::uint64_t under_4h = 0;
  for (double v : durations) {
    if (v >= 100.0 && v <= 10000.0) ++band;
    if (v < 4.0 * 3600.0) ++under_4h;
  }
  const double n = static_cast<double>(durations.size());
  s.fraction_100_10000 = static_cast<double>(band) / n;
  s.fraction_under_4h = static_cast<double>(under_4h) / n;
  const stats::Ecdf ecdf(durations);
  s.p80_seconds = ecdf.Quantile(0.80);
  return s;
}

std::vector<DurationPoint> DurationTimeline(
    std::span<const data::AttackRecord> attacks, TimePoint origin) {
  std::vector<DurationPoint> out;
  out.reserve(attacks.size());
  for (const data::AttackRecord& a : attacks) {
    out.push_back(DurationPoint{static_cast<int>(DayIndex(a.start_time, origin)),
                                static_cast<double>(a.duration_seconds())});
  }
  return out;
}

}  // namespace ddos::core
