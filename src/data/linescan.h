// Zero-copy line scanning and the router-side attack-row pre-scan.
//
// The parse-in-shard pipeline (stream/sharded.h) splits AttackCsvReader's
// job in two: the router walks raw bytes and routes line *spans*; workers
// parse fields inside their shard. Two pieces live here:
//
//  * LineSpanScanner - iterates a memory-mapped (or otherwise stable)
//    buffer as CSV lines without copying: each LineSpan points into the
//    buffer with its 1-based line number, byte offset, and whether the
//    line was newline-terminated (a final line without one is the torn
//    write AttackCsvReader reports as kTruncatedLine). SeekTo() restores a
//    checkpointed byte offset, which is how span-based resume works.
//
//  * AttackLinePreScanner - the router's single-pass byte-scan over one
//    line. It extracts exactly the fields routing needs - botnet_id (the
//    record shard key), target_ip (the collab shard key), ddos_id (dup
//    detection) and both timestamps (the global inter-attack gap) - while
//    tracking RFC-4180 quoting, and validates them with the same
//    primitives the full parse uses.
//
// Pre-scan contract: a line the pre-scan rejects would also be rejected by
// the full TryParseAttackLine parse, with the same IngestErrorKind when
// that line has a single defect. The converse does not hold: a row can
// pass the pre-scan and still fail full parse in a worker (bad family/
// protocol/asn/coordinate/magnitude) - those are reported by the shard
// with the original line number. DESIGN.md ("parse-in-shard ingest")
// documents what that asymmetry means for interval statistics.
#ifndef DDOSCOPE_DATA_LINESCAN_H_
#define DDOSCOPE_DATA_LINESCAN_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "data/ingest_error.h"

namespace ddos::data {

// One raw input line, pointing into the scanner's backing buffer.
struct LineSpan {
  std::string_view text;      // the line, without its '\n' or "\r\n"
  std::size_t line_no = 0;    // 1-based, matching AttackCsvReader
  std::uint64_t offset = 0;   // byte offset of the line start in the buffer
  bool saw_newline = true;    // false only for an unterminated final line
};

// Splits a stable in-memory buffer into LineSpans. Handles LF and CRLF
// endings (the '\r' is excluded from the span, like ReadCsvLine strips
// it); a trailing line without a newline is yielded with
// saw_newline == false. The buffer must outlive every yielded span.
class LineSpanScanner {
 public:
  explicit LineSpanScanner(std::string_view buffer) : buffer_(buffer) {}

  // Yields the next line. Returns false at end of buffer.
  bool Next(LineSpan* out);

  // Byte offset of the first unread line - after a checkpoint barrier this
  // is the resume cursor to persist (CheckpointMeta::source_offset).
  std::uint64_t offset() const { return pos_; }
  // Lines yielded so far (equals the last span's line_no).
  std::size_t line_number() const { return line_no_; }

  // Repositions to a byte offset previously obtained from offset(), with
  // line numbering continuing from `line_no`. Offsets from a different
  // buffer are the caller's bug; an offset past the end simply yields EOF.
  void SeekTo(std::uint64_t offset, std::size_t line_no) {
    pos_ = offset;
    line_no_ = line_no;
  }

 private:
  std::string_view buffer_;
  std::uint64_t pos_ = 0;
  std::size_t line_no_ = 0;
};

// The routing-relevant fields of one attack row.
struct AttackLinePreScan {
  std::uint64_t ddos_id = 0;
  std::uint32_t botnet_id = 0;   // record shard key
  std::uint32_t target_bits = 0; // collab shard key (IPv4 host-order bits)
  std::int64_t start_s = 0;      // 'timestamp' column, epoch seconds
  std::int64_t end_s = 0;        // 'end_time' column
};

// Single-pass field-extracting scan. Reusable: the scratch buffers for the
// five extracted fields stop allocating once they have seen their widest
// values, so the router's steady state is copy-only. Not thread-safe;
// one instance per routing thread.
class AttackLinePreScanner {
 public:
  // Returns true and fills *out when the line passes. On rejection fills
  // err->kind/detail (line_no/raw_line are the caller's, which knows its
  // feed position) and returns false.
  bool Scan(std::string_view line, AttackLinePreScan* out, IngestError* err);

 private:
  // ddos_id, botnet_id, target_ip, timestamp, end_time.
  std::array<std::string, 5> scratch_;
};

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_LINESCAN_H_
