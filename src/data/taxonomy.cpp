#include "data/taxonomy.h"

#include "common/strings.h"

namespace ddos::data {

namespace {

constexpr std::array<Family, kActiveFamilyCount> kActive = {
    Family::kAldibot,    Family::kBlackenergy, Family::kColddeath,
    Family::kDarkshell,  Family::kDdoser,      Family::kDirtjumper,
    Family::kNitol,      Family::kOptima,      Family::kPandora,
    Family::kYzf,
};

constexpr std::array<Family, kFamilyCount> kAll = {
    Family::kAldibot,    Family::kBlackenergy, Family::kColddeath,
    Family::kDarkshell,  Family::kDdoser,      Family::kDirtjumper,
    Family::kNitol,      Family::kOptima,      Family::kPandora,
    Family::kYzf,        Family::kArmageddon,  Family::kIllusion,
    Family::kInfinity,   Family::kImddos,      Family::kGumblar,
    Family::kZeus,       Family::kKelihos,     Family::kAsprox,
    Family::kFesti,      Family::kWaledac,     Family::kTorpig,
    Family::kRamnit,     Family::kVirut,
};

constexpr std::array<std::string_view, kFamilyCount> kFamilyNames = {
    "aldibot",  "blackenergy", "colddeath", "darkshell", "ddoser",
    "dirtjumper", "nitol",     "optima",    "pandora",   "yzf",
    "armageddon", "illusion",  "infinity",  "imddos",    "gumblar",
    "zeus",     "kelihos",     "asprox",    "festi",     "waledac",
    "torpig",   "ramnit",      "virut",
};

constexpr std::array<Protocol, kProtocolCount> kProtocols = {
    Protocol::kHttp, Protocol::kTcp,          Protocol::kUdp,
    Protocol::kIcmp, Protocol::kSyn,          Protocol::kUndetermined,
    Protocol::kUnknown,
};

constexpr std::array<std::string_view, kProtocolCount> kProtocolNames = {
    "HTTP", "TCP", "UDP", "ICMP", "SYN", "UNDETERMINED", "UNKNOWN",
};

}  // namespace

std::span<const Family> ActiveFamilies() { return kActive; }
std::span<const Family> AllFamilies() { return kAll; }

std::string_view FamilyName(Family f) {
  return kFamilyNames[static_cast<std::size_t>(f)];
}

std::optional<Family> ParseFamily(std::string_view name) {
  const std::string lower = ToLower(name);
  for (std::size_t i = 0; i < kFamilyNames.size(); ++i) {
    if (kFamilyNames[i] == lower) return kAll[i];
  }
  return std::nullopt;
}

bool IsActive(Family f) {
  return static_cast<int>(f) < kActiveFamilyCount;
}

std::span<const Protocol> AllProtocols() { return kProtocols; }

std::string_view ProtocolName(Protocol p) {
  return kProtocolNames[static_cast<std::size_t>(p)];
}

std::optional<Protocol> ParseProtocol(std::string_view name) {
  const std::string upper = ToLower(name);
  for (std::size_t i = 0; i < kProtocolNames.size(); ++i) {
    if (ToLower(kProtocolNames[i]) == upper) return kProtocols[i];
  }
  return std::nullopt;
}

}  // namespace ddos::data
