#include "data/ingest_error.h"

#include <ostream>
#include <stdexcept>

#include "common/strings.h"

namespace ddos::data {

std::string_view IngestErrorKindName(IngestErrorKind kind) {
  switch (kind) {
    case IngestErrorKind::kBadFieldCount:
      return "bad-field-count";
    case IngestErrorKind::kUnparseableNumber:
      return "unparseable-number";
    case IngestErrorKind::kUnterminatedQuote:
      return "unterminated-quote";
    case IngestErrorKind::kOutOfRangeTimestamp:
      return "out-of-range-timestamp";
    case IngestErrorKind::kNegativeDuration:
      return "negative-duration";
    case IngestErrorKind::kDuplicateId:
      return "duplicate-id";
    case IngestErrorKind::kTruncatedLine:
      return "truncated-line";
  }
  return "unknown";
}

std::string IngestErrorReport::ToString() const {
  std::string out;
  for (int k = 0; k < kIngestErrorKindCount; ++k) {
    if (counts[static_cast<std::size_t>(k)] == 0) continue;
    out += StrFormat(
        "  %s: %llu\n",
        std::string(IngestErrorKindName(static_cast<IngestErrorKind>(k)))
            .c_str(),
        static_cast<unsigned long long>(counts[static_cast<std::size_t>(k)]));
  }
  return out;
}

QuarantineWriter::QuarantineWriter(const std::string& path)
    : file_(path), out_(&file_) {
  if (!file_) {
    throw std::runtime_error("QuarantineWriter: cannot open " + path);
  }
}

QuarantineWriter::QuarantineWriter(std::ostream& out) : out_(&out) {}

void QuarantineWriter::Write(const IngestError& error) {
  *out_ << "# line " << error.line_no << ": "
        << IngestErrorKindName(error.kind) << ": " << error.detail << '\n'
        << error.raw_line << '\n';
  ++written_;
}

}  // namespace ddos::data
