#include "data/ingest_error.h"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "common/strings.h"

namespace ddos::data {

std::string_view IngestErrorKindName(IngestErrorKind kind) {
  switch (kind) {
    case IngestErrorKind::kBadFieldCount:
      return "bad-field-count";
    case IngestErrorKind::kUnparseableNumber:
      return "unparseable-number";
    case IngestErrorKind::kUnterminatedQuote:
      return "unterminated-quote";
    case IngestErrorKind::kOutOfRangeTimestamp:
      return "out-of-range-timestamp";
    case IngestErrorKind::kNegativeDuration:
      return "negative-duration";
    case IngestErrorKind::kDuplicateId:
      return "duplicate-id";
    case IngestErrorKind::kTruncatedLine:
      return "truncated-line";
  }
  return "unknown";
}

std::string IngestErrorReport::ToString() const {
  std::string out;
  for (int k = 0; k < kIngestErrorKindCount; ++k) {
    if (counts[static_cast<std::size_t>(k)] == 0) continue;
    out += StrFormat(
        "  %s: %llu\n",
        std::string(IngestErrorKindName(static_cast<IngestErrorKind>(k)))
            .c_str(),
        static_cast<unsigned long long>(counts[static_cast<std::size_t>(k)]));
  }
  return out;
}

QuarantineWriter::QuarantineWriter(const std::string& path)
    : path_(path), tmp_path_(path + ".tmp"), file_(tmp_path_), out_(&file_) {
  if (!file_) {
    throw std::runtime_error("QuarantineWriter: cannot open " + tmp_path_);
  }
}

QuarantineWriter::QuarantineWriter(std::ostream& out) : out_(&out) {}

QuarantineWriter::~QuarantineWriter() {
  try {
    Close();
  } catch (...) {
    // Close() already removed the stage file; a destructor cannot usefully
    // propagate the failure.
  }
}

void QuarantineWriter::Write(const IngestError& error) {
  if (closed_) {
    throw std::runtime_error("QuarantineWriter: Write after Close");
  }
  *out_ << "# line " << error.line_no << ": "
        << IngestErrorKindName(error.kind) << ": " << error.detail << '\n'
        << error.raw_line << '\n';
  ++written_;
}

void QuarantineWriter::Close() {
  if (closed_) return;
  closed_ = true;
  if (tmp_path_.empty()) {
    out_->flush();
    return;
  }
  file_.flush();
  const bool write_ok = static_cast<bool>(file_);
  file_.close();
  if (!write_ok) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("QuarantineWriter: write failed: " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("QuarantineWriter: cannot rename " + tmp_path_ +
                             " to " + path_);
  }
}

}  // namespace ddos::data
