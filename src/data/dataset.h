// The joined dataset: owns all records and provides the indexes the
// analyses need (per-family, per-target, chronological).
//
// Usage: Add* records in any order, then call Finalize() exactly once.
// Finalize sorts attacks chronologically (ties by ddos_id), snapshots by
// time, deduplicates the bot list by IP (keeping widest seen-interval), and
// builds the family/target indexes. All read accessors require a finalized
// dataset and return stable spans/indices into it.
#ifndef DDOSCOPE_DATA_DATASET_H_
#define DDOSCOPE_DATA_DATASET_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "data/records.h"

namespace ddos::data {

class Dataset {
 public:
  void AddAttack(AttackRecord attack);
  void AddBot(BotRecord bot);
  void AddBotnet(BotnetRecord botnet);
  void AddSnapshot(SnapshotRecord snapshot);

  // Sorts, deduplicates bots, and builds indexes. Idempotent is not
  // required: call once after loading; throws std::logic_error on re-entry.
  void Finalize();
  bool finalized() const { return finalized_; }

  // Chronologically sorted after Finalize().
  std::span<const AttackRecord> attacks() const;
  std::span<const BotRecord> bots() const;
  std::span<const BotnetRecord> botnets() const;
  std::span<const SnapshotRecord> snapshots() const;

  // Indices into attacks(), chronological.
  std::span<const std::size_t> AttacksOfFamily(Family f) const;
  // Indices into attacks() for one victim IP; empty span if never attacked.
  std::span<const std::size_t> AttacksOnTarget(net::IPv4Address target) const;
  // All distinct victim IPs (unordered).
  std::vector<net::IPv4Address> Targets() const;
  // Indices into snapshots(), chronological, for one family.
  std::span<const std::size_t> SnapshotsOfFamily(Family f) const;

  // Observation window: [min start, max end] over attacks. Zero TimePoints
  // when there are no attacks.
  TimePoint window_begin() const { return window_begin_; }
  TimePoint window_end() const { return window_end_; }

 private:
  void RequireFinalized() const;

  std::vector<AttackRecord> attacks_;
  std::vector<BotRecord> bots_;
  std::vector<BotnetRecord> botnets_;
  std::vector<SnapshotRecord> snapshots_;

  std::vector<std::vector<std::size_t>> family_attacks_;   // [family] -> idx
  std::vector<std::vector<std::size_t>> family_snapshots_; // [family] -> idx
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> target_attacks_;
  TimePoint window_begin_;
  TimePoint window_end_;
  bool finalized_ = false;
};

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_DATASET_H_
