// CSV serialization of the dataset schemas.
//
// The attack CSV columns mirror Table I exactly (ddos_id, botnet_id,
// category, target_ip, timestamp, end_time, asn, cc, city, latitude,
// longitude) plus the joined family/organization/magnitude columns. This
// lets externally collected traces be fed through the same analyses, and it
// is the archival format of the synthetic traces the benches generate.
//
// Quoting: fields containing ',', '"' or newlines are double-quoted with
// inner quotes doubled (RFC 4180). A '"' in the interior of an unquoted
// field is kept literally (the common lenient reading); only a quote at the
// start of a field opens quoting. Line endings may be LF or CRLF; a
// trailing '\r' is stripped before parsing so files written on Windows
// parse identically.
//
// Error handling: every malformed row is diagnosed with a typed
// IngestErrorKind (see data/ingest_error.h). Under the default
// ParsePolicy::kStrict the readers throw std::runtime_error with a line
// number, exactly as they always have; kSkip and kQuarantine count the
// error in an IngestErrorReport (and optionally preserve the raw line) and
// keep reading, so a 207-day feed survives its bad rows.
#ifndef DDOSCOPE_DATA_CSV_H_
#define DDOSCOPE_DATA_CSV_H_

#include <array>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "data/ingest_error.h"
#include "obs/metrics.h"

namespace ddos::data {

// Splits one CSV line honoring RFC-4180 quoting. The two-argument form
// reports whether the line ended inside an open quoted field (the line is
// still split on a best-effort basis); the one-argument form is lenient.
std::vector<std::string> ParseCsvLine(std::string_view line);
std::vector<std::string> ParseCsvLine(std::string_view line,
                                      bool* unterminated_quote);
// Allocation-reusing form: splits into *fields, reusing each element's
// capacity across calls (the hot path of AttackCsvReader, which parses the
// same 14-column shape millions of times). fields is resized to the field
// count; contents beyond it are discarded. The line is a string_view so
// the sharded workers can span-parse straight out of a memory-mapped feed
// (stream/sharded.h) without materializing a per-line std::string first.
void ParseCsvLineInto(std::string_view line, std::vector<std::string>* fields,
                      bool* unterminated_quote);
// Escapes one field for CSV output.
std::string CsvEscape(const std::string& field);

// Accepted wall-clock range for attack timestamps: values outside it are
// rejected as kOutOfRangeTimestamp. Shared by the full row parse and the
// sharded router's pre-scan (data/linescan.h) so the two cannot disagree.
inline const TimePoint kMinAttackTimestamp = TimePoint(0);  // 1970
inline const TimePoint kMaxAttackTimestamp =
    TimePoint::FromDate(2100, 1, 1);

// One-row building blocks of the attack-table format, shared by the file
// readers/writers and the netd line-protocol ingest path (src/netd), which
// receives the same Table-I rows one line at a time over TCP.
//
// TryParseAttackFields validates an already-split row; TryParseAttackLine
// additionally splits (rejecting unterminated quotes). On failure *err is
// filled with the kind and diagnosis (line_no/raw_line are left for the
// caller, which knows its own feed position) and false is returned.
bool TryParseAttackFields(const std::vector<std::string>& fields,
                          AttackRecord* out, IngestError* err);
bool TryParseAttackLine(std::string_view line, AttackRecord* out,
                        IngestError* err);

// The attack-table header row (no trailing newline) and a single data row
// (trailing newline included), exactly as WriteAttacksCsv emits them.
std::string_view AttackCsvHeader();
void WriteAttackCsvRow(std::ostream& out, const AttackRecord& a);

// getline wrapper shared by all CSV readers: strips one trailing '\r' so
// CRLF-terminated files parse like LF files. Returns false at EOF. The
// three-argument form additionally reports whether the line was terminated
// by a newline; a final line without one is the signature of a torn write.
bool ReadCsvLine(std::istream& in, std::string* line);
bool ReadCsvLine(std::istream& in, std::string* line, bool* saw_newline);

// How AttackCsvReader reacts to malformed rows.
struct ParseOptions {
  ParsePolicy policy = ParsePolicy::kStrict;
  // Receives every rejected raw line when policy == kQuarantine. Owned by
  // the caller; may be null (kQuarantine then degrades to kSkip).
  QuarantineWriter* quarantine = nullptr;
  // Rows longer than this are rejected as kTruncatedLine instead of being
  // buffered without bound (defense against binary garbage on the feed).
  std::size_t max_line_bytes = 1 << 20;
  // Reject rows whose ddos_id was already ingested (kDuplicateId). Costs
  // one hash-set entry per record, so it is off under kStrict by default
  // to preserve the reader's constant-memory contract for trusted files.
  bool detect_duplicate_ids = false;
  // When non-null the reader publishes ddoscope_ingest_* counters (records,
  // bytes, errors by kind) here. Handles are resolved once at construction;
  // the per-row cost is a relaxed atomic add (obs/metrics.h). Owned by the
  // caller, which must outlive the reader.
  obs::MetricsRegistry* metrics = nullptr;

  static ParseOptions Strict() { return ParseOptions{}; }
  static ParseOptions Skip() {
    ParseOptions o;
    o.policy = ParsePolicy::kSkip;
    o.detect_duplicate_ids = true;
    return o;
  }
  static ParseOptions Quarantine(QuarantineWriter* writer) {
    ParseOptions o;
    o.policy = ParsePolicy::kQuarantine;
    o.quarantine = writer;
    o.detect_duplicate_ids = true;
    return o;
  }
};

// Streaming one-record-at-a-time reader over the attack table. Unlike
// ReadAttacksCsv it never materializes the file: each Next() parses one
// row, so an arbitrarily large trace can be consumed in constant memory
// (the backbone of ddos::stream ingestion). Blank lines are skipped; the
// header line is consumed lazily on the first Next().
class AttackCsvReader {
 public:
  // Reads from a caller-owned stream (kept alive by the caller).
  explicit AttackCsvReader(std::istream& in, ParseOptions options = {});
  // Opens `path`; throws std::runtime_error if it cannot be opened.
  explicit AttackCsvReader(const std::string& path, ParseOptions options = {});

  // Parses the next record into *out. Returns false at end of input.
  // Under ParsePolicy::kStrict, throws std::runtime_error (with a line
  // number and error kind) on malformed rows; under kSkip/kQuarantine the
  // row is counted in error_report() and reading continues.
  bool Next(AttackRecord* out);

  // Fast-forwards past raw lines (without parsing) until line_number()
  // reaches `line_no`, and restores the records-read counter - the resume
  // path after a checkpoint reload. The skipped region was already
  // validated by the pre-crash run, so its errors are not re-reported.
  void ResumeAt(std::size_t line_no, std::size_t records);

  // Count-based resume for non-seekable feeds (stdin): parses and discards
  // rows until `records` valid records have been consumed. Unlike ResumeAt
  // this cannot skip by raw line, so it re-parses the region - but it works
  // on a pipe, where the pre-checkpoint bytes arrive again only because the
  // producer replays them. Errors in the replayed region were reported by
  // the pre-crash run and are suppressed, not re-reported.
  void ResumeAtRecords(std::size_t records);

  // Folds a checkpointed predecessor's error tallies into error_report()
  // (and the attached obs counters), making the reader the single source of
  // truth after a resume: the final report and the metrics exposition both
  // equal "uninterrupted run" counts with no double counting. Call after
  // ResumeAt/ResumeAtRecords.
  void SeedErrors(const IngestErrorReport& errors);

  std::size_t records_read() const { return records_; }
  std::size_t line_number() const { return line_no_; }
  const IngestErrorReport& error_report() const { return report_; }

 private:
  void ResolveMetrics();

  std::ifstream file_;  // engaged only by the path constructor
  std::istream* in_;
  ParseOptions options_;
  IngestErrorReport report_;
  std::unordered_set<std::uint64_t> seen_ids_;  // engaged by dedupe option
  std::size_t line_no_ = 0;
  std::size_t records_ = 0;
  bool header_skipped_ = false;
  // Scratch reused across Next() calls (hot-loop allocation avoidance).
  std::string line_;
  std::vector<std::string> fields_;
  // Resolved metric handles; all null when options_.metrics is null.
  obs::Counter* obs_records_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  std::array<obs::Counter*, kIngestErrorKindCount> obs_errors_{};
};

void WriteAttacksCsv(std::ostream& out, std::span<const AttackRecord> attacks);
std::vector<AttackRecord> ReadAttacksCsv(std::istream& in);
// Error-policy variant; per-kind tallies are added to *report if non-null.
std::vector<AttackRecord> ReadAttacksCsv(std::istream& in, ParseOptions options,
                                         IngestErrorReport* report = nullptr);

void WriteBotnetsCsv(std::ostream& out, std::span<const BotnetRecord> botnets);
std::vector<BotnetRecord> ReadBotnetsCsv(std::istream& in);

// Snapshots are flattened to one row per (time, family, bot_ip).
void WriteSnapshotsCsv(std::ostream& out, std::span<const SnapshotRecord> snaps);
std::vector<SnapshotRecord> ReadSnapshotsCsv(std::istream& in);

// Convenience: write/read the attack table to/from a file path.
void SaveAttacksCsv(const std::string& path, std::span<const AttackRecord> attacks);
std::vector<AttackRecord> LoadAttacksCsv(const std::string& path);

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_CSV_H_
