// CSV serialization of the dataset schemas.
//
// The attack CSV columns mirror Table I exactly (ddos_id, botnet_id,
// category, target_ip, timestamp, end_time, asn, cc, city, latitude,
// longitude) plus the joined family/organization/magnitude columns. This
// lets externally collected traces be fed through the same analyses, and it
// is the archival format of the synthetic traces the benches generate.
//
// Quoting: fields containing ',', '"' or newlines are double-quoted with
// inner quotes doubled (RFC 4180). Readers throw std::runtime_error with a
// line number on malformed input.
#ifndef DDOSCOPE_DATA_CSV_H_
#define DDOSCOPE_DATA_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ddos::data {

// Splits one CSV line honoring RFC-4180 quoting.
std::vector<std::string> ParseCsvLine(const std::string& line);
// Escapes one field for CSV output.
std::string CsvEscape(const std::string& field);

void WriteAttacksCsv(std::ostream& out, std::span<const AttackRecord> attacks);
std::vector<AttackRecord> ReadAttacksCsv(std::istream& in);

void WriteBotnetsCsv(std::ostream& out, std::span<const BotnetRecord> botnets);
std::vector<BotnetRecord> ReadBotnetsCsv(std::istream& in);

// Snapshots are flattened to one row per (time, family, bot_ip).
void WriteSnapshotsCsv(std::ostream& out, std::span<const SnapshotRecord> snaps);
std::vector<SnapshotRecord> ReadSnapshotsCsv(std::istream& in);

// Convenience: write/read the attack table to/from a file path.
void SaveAttacksCsv(const std::string& path, std::span<const AttackRecord> attacks);
std::vector<AttackRecord> LoadAttacksCsv(const std::string& path);

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_CSV_H_
