// CSV serialization of the dataset schemas.
//
// The attack CSV columns mirror Table I exactly (ddos_id, botnet_id,
// category, target_ip, timestamp, end_time, asn, cc, city, latitude,
// longitude) plus the joined family/organization/magnitude columns. This
// lets externally collected traces be fed through the same analyses, and it
// is the archival format of the synthetic traces the benches generate.
//
// Quoting: fields containing ',', '"' or newlines are double-quoted with
// inner quotes doubled (RFC 4180). Readers throw std::runtime_error with a
// line number on malformed input. Line endings may be LF or CRLF; a
// trailing '\r' is stripped before parsing so files written on Windows
// parse identically.
#ifndef DDOSCOPE_DATA_CSV_H_
#define DDOSCOPE_DATA_CSV_H_

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ddos::data {

// Splits one CSV line honoring RFC-4180 quoting.
std::vector<std::string> ParseCsvLine(const std::string& line);
// Escapes one field for CSV output.
std::string CsvEscape(const std::string& field);

// getline wrapper shared by all CSV readers: strips one trailing '\r' so
// CRLF-terminated files parse like LF files. Returns false at EOF.
bool ReadCsvLine(std::istream& in, std::string* line);

// Streaming one-record-at-a-time reader over the attack table. Unlike
// ReadAttacksCsv it never materializes the file: each Next() parses one
// row, so an arbitrarily large trace can be consumed in constant memory
// (the backbone of ddos::stream ingestion). Blank lines are skipped; the
// header line is consumed lazily on the first Next().
class AttackCsvReader {
 public:
  // Reads from a caller-owned stream (kept alive by the caller).
  explicit AttackCsvReader(std::istream& in);
  // Opens `path`; throws std::runtime_error if it cannot be opened.
  explicit AttackCsvReader(const std::string& path);

  // Parses the next record into *out. Returns false at end of input.
  // Throws std::runtime_error (with a line number) on malformed rows.
  bool Next(AttackRecord* out);

  std::size_t records_read() const { return records_; }
  std::size_t line_number() const { return line_no_; }

 private:
  std::ifstream file_;  // engaged only by the path constructor
  std::istream* in_;
  std::size_t line_no_ = 0;
  std::size_t records_ = 0;
  bool header_skipped_ = false;
};

void WriteAttacksCsv(std::ostream& out, std::span<const AttackRecord> attacks);
std::vector<AttackRecord> ReadAttacksCsv(std::istream& in);

void WriteBotnetsCsv(std::ostream& out, std::span<const BotnetRecord> botnets);
std::vector<BotnetRecord> ReadBotnetsCsv(std::istream& in);

// Snapshots are flattened to one row per (time, family, bot_ip).
void WriteSnapshotsCsv(std::ostream& out, std::span<const SnapshotRecord> snaps);
std::vector<SnapshotRecord> ReadSnapshotsCsv(std::istream& in);

// Convenience: write/read the attack table to/from a file path.
void SaveAttacksCsv(const std::string& path, std::span<const AttackRecord> attacks);
std::vector<AttackRecord> LoadAttacksCsv(const std::string& path);

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_CSV_H_
