// Fluent attack-table queries.
//
// The analyses in core/ consume whole datasets; exploratory work (and the
// examples) want slices: "Dirtjumper HTTP attacks on US targets in
// February lasting over an hour". `AttackQuery` is a small predicate
// builder over the attack table returning indices compatible with every
// index-based analysis helper.
#ifndef DDOSCOPE_DATA_QUERY_H_
#define DDOSCOPE_DATA_QUERY_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace ddos::data {

class AttackQuery {
 public:
  AttackQuery& WithFamily(Family family);
  // Additional families OR together.
  AttackQuery& WithFamilies(std::span<const Family> families);
  AttackQuery& WithProtocol(Protocol protocol);
  AttackQuery& WithTargetCountry(std::string cc);
  AttackQuery& WithTarget(net::IPv4Address target);
  AttackQuery& WithBotnet(std::uint32_t botnet_id);
  // Start time in [begin, end).
  AttackQuery& StartingBetween(TimePoint begin, TimePoint end);
  AttackQuery& WithMinDuration(std::int64_t seconds);
  AttackQuery& WithMaxDuration(std::int64_t seconds);
  AttackQuery& WithMinMagnitude(std::uint32_t bots);

  bool Matches(const AttackRecord& attack) const;

  // Indices into dataset.attacks(), chronological.
  std::vector<std::size_t> Run(const Dataset& dataset) const;
  std::size_t Count(const Dataset& dataset) const;

 private:
  std::set<Family> families_;
  std::optional<Protocol> protocol_;
  std::optional<std::string> target_country_;
  std::optional<net::IPv4Address> target_;
  std::optional<std::uint32_t> botnet_id_;
  std::optional<TimePoint> begin_;
  std::optional<TimePoint> end_;
  std::optional<std::int64_t> min_duration_s_;
  std::optional<std::int64_t> max_duration_s_;
  std::optional<std::uint32_t> min_magnitude_;
};

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_QUERY_H_
