#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/strings.h"

namespace ddos::data {

namespace {

[[noreturn]] void Fail(const char* what, std::size_t line_no) {
  throw std::runtime_error(StrFormat("CSV: %s at line %zu", what, line_no));
}

std::int64_t FieldInt(const std::vector<std::string>& fields, std::size_t idx,
                      std::size_t line_no) {
  const auto v = ParseInt64(fields.at(idx));
  if (!v) Fail("bad integer field", line_no);
  return *v;
}

// Timestamps far outside the plausible monitoring era are rejected: the
// schema carries wall-clock seconds, so a mangled year silently skews every
// interval/duration statistic downstream if allowed through.
const TimePoint& kMinTimestamp = kMinAttackTimestamp;
const TimePoint& kMaxTimestamp = kMaxAttackTimestamp;

bool ParseError(IngestError* err, IngestErrorKind kind, std::string detail) {
  err->kind = kind;
  err->detail = std::move(detail);
  return false;
}

}  // namespace

// Parses and validates one attack row. Returns false with *err filled on
// any malformed field; never throws.
bool TryParseAttackFields(const std::vector<std::string>& f, AttackRecord* out,
                          IngestError* err) {
  if (f.size() != 14) {
    return ParseError(err, IngestErrorKind::kBadFieldCount,
                      StrFormat("expected 14 fields, got %zu", f.size()));
  }
  AttackRecord a;
  const auto ddos_id = ParseInt64(f[0]);
  if (!ddos_id || *ddos_id < 0) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "bad ddos_id '" + f[0] + "'");
  }
  a.ddos_id = static_cast<std::uint64_t>(*ddos_id);
  const auto botnet_id = ParseInt64(f[1]);
  if (!botnet_id) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "bad botnet_id '" + f[1] + "'");
  }
  a.botnet_id = static_cast<std::uint32_t>(*botnet_id);
  const auto family = ParseFamily(f[2]);
  if (!family) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "unknown family '" + f[2] + "'");
  }
  a.family = *family;
  const auto protocol = ParseProtocol(f[3]);
  if (!protocol) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "unknown protocol '" + f[3] + "'");
  }
  a.category = *protocol;
  const auto ip = net::IPv4Address::Parse(f[4]);
  if (!ip) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "bad target_ip '" + f[4] + "'");
  }
  a.target_ip = *ip;
  for (const std::size_t idx : {std::size_t{5}, std::size_t{6}}) {
    const auto t = TimePoint::TryParse(f[idx]);
    if (!t) {
      return ParseError(err, IngestErrorKind::kOutOfRangeTimestamp,
                        "malformed timestamp '" + f[idx] + "'");
    }
    if (*t < kMinTimestamp || *t > kMaxTimestamp) {
      return ParseError(err, IngestErrorKind::kOutOfRangeTimestamp,
                        "timestamp '" + f[idx] + "' outside 1970..2100");
    }
    (idx == 5 ? a.start_time : a.end_time) = *t;
  }
  if (a.end_time < a.start_time) {
    return ParseError(
        err, IngestErrorKind::kNegativeDuration,
        StrFormat("end_time precedes timestamp by %lld s",
                  static_cast<long long>(a.start_time - a.end_time)));
  }
  const auto asn = ParseInt64(f[7]);
  if (!asn) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "bad asn '" + f[7] + "'");
  }
  a.asn = net::Asn(static_cast<std::uint32_t>(*asn));
  a.cc = f[8];
  a.city = f[9];
  const auto lat = ParseDouble(f[10]);
  const auto lon = ParseDouble(f[11]);
  if (!lat || !lon) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "bad coordinate '" + (lat ? f[11] : f[10]) + "'");
  }
  // NaN/inf coordinates would flow into geodesic math as NaN distances;
  // reject them here with the rest of the numeric validation.
  if (!std::isfinite(*lat) || !std::isfinite(*lon) || *lat < -90.0 ||
      *lat > 90.0 || *lon < -180.0 || *lon > 180.0) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "coordinate out of range or non-finite");
  }
  a.location.lat_deg = *lat;
  a.location.lon_deg = *lon;
  a.organization = f[12];
  const auto magnitude = ParseInt64(f[13]);
  if (!magnitude || *magnitude < 0) {
    return ParseError(err, IngestErrorKind::kUnparseableNumber,
                      "bad magnitude '" + f[13] + "'");
  }
  a.magnitude = static_cast<std::uint32_t>(*magnitude);
  *out = std::move(a);
  return true;
}

bool TryParseAttackLine(std::string_view line, AttackRecord* out,
                        IngestError* err) {
  // Thread-local scratch: the netd ingest path calls this once per received
  // line, and reusing the field buffers keeps the steady state free of heap
  // allocations, same as AttackCsvReader::Next.
  thread_local std::vector<std::string> fields;
  bool unterminated = false;
  ParseCsvLineInto(line, &fields, &unterminated);
  if (unterminated) {
    err->kind = IngestErrorKind::kUnterminatedQuote;
    err->detail = "line ended inside a quoted field";
    return false;
  }
  return TryParseAttackFields(fields, out, err);
}

bool ReadCsvLine(std::istream& in, std::string* line) {
  bool saw_newline;
  return ReadCsvLine(in, line, &saw_newline);
}

bool ReadCsvLine(std::istream& in, std::string* line, bool* saw_newline) {
  if (!std::getline(in, *line)) return false;
  // getline sets eofbit only when the stream ended before the delimiter, so
  // a cleanly terminated final line still reports saw_newline == true.
  *saw_newline = !in.eof();
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

std::vector<std::string> ParseCsvLine(std::string_view line) {
  bool unterminated;
  return ParseCsvLine(line, &unterminated);
}

std::vector<std::string> ParseCsvLine(std::string_view line,
                                      bool* unterminated_quote) {
  std::vector<std::string> fields;
  ParseCsvLineInto(line, &fields, unterminated_quote);
  return fields;
}

void ParseCsvLineInto(std::string_view line, std::vector<std::string>* fields,
                      bool* unterminated_quote) {
  // Appends into the caller's strings in place, so a reader looping over a
  // fixed-shape file stops allocating once every field has seen its widest
  // value.
  std::size_t count = 0;
  const auto next_field = [fields, &count]() -> std::string& {
    if (count == fields->size()) fields->emplace_back();
    std::string& f = (*fields)[count++];
    f.clear();
    return f;
  };
  std::string* current = &next_field();
  bool in_quotes = false;
  bool at_field_start = true;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current->push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current->push_back(c);
      }
    } else if (c == '"' && at_field_start) {
      // Only a quote at the start of a field opens quoting; an interior
      // quote (`a"b`) is data, matching the common lenient reading.
      in_quotes = true;
      at_field_start = false;
    } else if (c == ',') {
      current = &next_field();
      at_field_start = true;
    } else {
      current->push_back(c);
      at_field_start = false;
    }
  }
  fields->resize(count);
  *unterminated_quote = in_quotes;
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string_view AttackCsvHeader() {
  return "ddos_id,botnet_id,family,category,target_ip,timestamp,end_time,asn,"
         "cc,city,latitude,longitude,organization,magnitude";
}

void WriteAttackCsvRow(std::ostream& out, const AttackRecord& a) {
  out << a.ddos_id << ',' << a.botnet_id << ',' << FamilyName(a.family) << ','
      << ProtocolName(a.category) << ',' << a.target_ip.ToString() << ','
      << a.start_time.ToString() << ',' << a.end_time.ToString() << ','
      << a.asn.value() << ',' << a.cc << ',' << CsvEscape(a.city) << ','
      << StrFormat("%.6f", a.location.lat_deg) << ','
      << StrFormat("%.6f", a.location.lon_deg) << ','
      << CsvEscape(a.organization) << ',' << a.magnitude << '\n';
}

void WriteAttacksCsv(std::ostream& out, std::span<const AttackRecord> attacks) {
  out << AttackCsvHeader() << '\n';
  for (const AttackRecord& a : attacks) WriteAttackCsvRow(out, a);
}

std::vector<AttackRecord> ReadAttacksCsv(std::istream& in) {
  return ReadAttacksCsv(in, ParseOptions{}, nullptr);
}

std::vector<AttackRecord> ReadAttacksCsv(std::istream& in, ParseOptions options,
                                         IngestErrorReport* report) {
  std::vector<AttackRecord> out;
  AttackCsvReader reader(in, options);
  AttackRecord a;
  while (reader.Next(&a)) out.push_back(std::move(a));
  if (report != nullptr) {
    for (int k = 0; k < kIngestErrorKindCount; ++k) {
      report->counts[static_cast<std::size_t>(k)] +=
          reader.error_report().counts[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

AttackCsvReader::AttackCsvReader(std::istream& in, ParseOptions options)
    : in_(&in), options_(options) {
  ResolveMetrics();
}

AttackCsvReader::AttackCsvReader(const std::string& path, ParseOptions options)
    : file_(path), in_(&file_), options_(options) {
  if (!file_) throw std::runtime_error("AttackCsvReader: cannot open " + path);
  ResolveMetrics();
}

void AttackCsvReader::ResolveMetrics() {
  if (options_.metrics == nullptr) return;
  obs_records_ = options_.metrics->GetCounter(
      "ddoscope_ingest_records_total", "Valid attack records parsed");
  obs_bytes_ = options_.metrics->GetCounter(
      "ddoscope_ingest_bytes_total", "Raw feed bytes consumed (incl. newlines)");
  for (int k = 0; k < kIngestErrorKindCount; ++k) {
    const auto kind = static_cast<IngestErrorKind>(k);
    obs_errors_[static_cast<std::size_t>(k)] = options_.metrics->GetCounter(
        "ddoscope_ingest_errors_total", "Rejected rows by IngestErrorKind",
        {{"kind", std::string(IngestErrorKindName(kind))}});
  }
}

bool AttackCsvReader::Next(AttackRecord* out) {
  // line_ and fields_ are members so their buffers survive across records:
  // steady state parses a row with zero heap allocations beyond the
  // record's own strings.
  std::string& line = line_;
  bool saw_newline;
  while (ReadCsvLine(*in_, &line, &saw_newline)) {
    ++line_no_;
    obs::MaybeAdd(obs_bytes_, line.size() + (saw_newline ? 1 : 0));
    if (!header_skipped_) {
      header_skipped_ = true;
      continue;
    }
    if (Trim(line).empty()) continue;

    IngestError err;
    bool ok = false;
    if (line.size() > options_.max_line_bytes) {
      err.kind = IngestErrorKind::kTruncatedLine;
      err.detail = StrFormat("line of %zu bytes exceeds the %zu-byte cap",
                             line.size(), options_.max_line_bytes);
    } else {
      bool unterminated = false;
      ParseCsvLineInto(line, &fields_, &unterminated);
      if (unterminated) {
        err.kind = IngestErrorKind::kUnterminatedQuote;
        err.detail = "line ended inside a quoted field";
      } else {
        ok = TryParseAttackFields(fields_, out, &err);
      }
      // Any failure on a final line that the stream cut short is reported
      // as the torn write it is, not as whatever field the cut landed in.
      if (!ok && !saw_newline) {
        err.kind = IngestErrorKind::kTruncatedLine;
        err.detail = "stream ended mid-record (" + err.detail + ")";
      }
    }
    if (ok && options_.detect_duplicate_ids &&
        !seen_ids_.insert(out->ddos_id).second) {
      ok = false;
      err.kind = IngestErrorKind::kDuplicateId;
      err.detail =
          StrFormat("ddos_id %llu already ingested",
                    static_cast<unsigned long long>(out->ddos_id));
    }
    if (ok) {
      ++records_;
      obs::MaybeAdd(obs_records_);
      return true;
    }

    err.line_no = line_no_;
    err.raw_line = line;
    report_.Add(err.kind);
    obs::MaybeAdd(obs_errors_[static_cast<std::size_t>(err.kind)]);
    if (options_.policy == ParsePolicy::kStrict) {
      throw std::runtime_error(StrFormat(
          "CSV: %s: %s at line %zu",
          std::string(IngestErrorKindName(err.kind)).c_str(),
          err.detail.c_str(), line_no_));
    }
    if (options_.policy == ParsePolicy::kQuarantine &&
        options_.quarantine != nullptr) {
      options_.quarantine->Write(err);
    }
  }
  return false;
}

void AttackCsvReader::ResumeAt(std::size_t line_no, std::size_t records) {
  while (line_no_ < line_no && ReadCsvLine(*in_, &line_)) {
    ++line_no_;
    obs::MaybeAdd(obs_bytes_, line_.size() + 1);
  }
  header_skipped_ = line_no_ >= 1;
  records_ = records;
  // The fast-forwarded region's records were validated pre-crash; credit
  // them so the exposition counter equals records_read().
  obs::MaybeAdd(obs_records_, records);
}

void AttackCsvReader::ResumeAtRecords(std::size_t records) {
  // Replay the already-consumed prefix with error reporting silenced: the
  // pre-checkpoint run already reported (and possibly quarantined) these
  // rows, and kStrict must not abort a resume over a row it survived before.
  // Error *metrics* are silenced with the report - the checkpoint's tallies
  // come back through SeedErrors, and counting the replay too would double
  // them - while record/byte counters keep running: the replayed rows are
  // this process's only pass over that region.
  const ParseOptions saved = options_;
  const auto saved_errors = obs_errors_;
  options_.policy = ParsePolicy::kSkip;
  options_.quarantine = nullptr;
  obs_errors_.fill(nullptr);
  AttackRecord discard;
  while (records_ < records && Next(&discard)) {
  }
  options_ = saved;
  obs_errors_ = saved_errors;
  report_ = IngestErrorReport{};
}

void AttackCsvReader::SeedErrors(const IngestErrorReport& errors) {
  for (int k = 0; k < kIngestErrorKindCount; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    report_.counts[idx] += errors.counts[idx];
    obs::MaybeAdd(obs_errors_[idx], errors.counts[idx]);
  }
}

void WriteBotnetsCsv(std::ostream& out, std::span<const BotnetRecord> botnets) {
  out << "botnet_id,family,controller_ip,first_seen,last_seen\n";
  for (const BotnetRecord& b : botnets) {
    out << b.botnet_id << ',' << FamilyName(b.family) << ','
        << b.controller_ip.ToString() << ',' << b.first_seen.ToString() << ','
        << b.last_seen.ToString() << '\n';
  }
}

std::vector<BotnetRecord> ReadBotnetsCsv(std::istream& in) {
  std::vector<BotnetRecord> out;
  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  while (ReadCsvLine(in, &line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (Trim(line).empty()) continue;
    const auto f = ParseCsvLine(line);
    if (f.size() != 5) Fail("expected 5 fields", line_no);
    BotnetRecord b;
    b.botnet_id = static_cast<std::uint32_t>(FieldInt(f, 0, line_no));
    const auto family = ParseFamily(f[1]);
    if (!family) Fail("unknown family", line_no);
    b.family = *family;
    const auto ip = net::IPv4Address::Parse(f[2]);
    if (!ip) Fail("bad controller_ip", line_no);
    b.controller_ip = *ip;
    b.first_seen = TimePoint::Parse(f[3]);
    b.last_seen = TimePoint::Parse(f[4]);
    out.push_back(b);
  }
  return out;
}

void WriteSnapshotsCsv(std::ostream& out, std::span<const SnapshotRecord> snaps) {
  out << "time,family,bot_ip\n";
  for (const SnapshotRecord& s : snaps) {
    const std::string stamp = s.time.ToString();
    for (const net::IPv4Address& ip : s.bot_ips) {
      out << stamp << ',' << FamilyName(s.family) << ',' << ip.ToString() << '\n';
    }
  }
}

std::vector<SnapshotRecord> ReadSnapshotsCsv(std::istream& in) {
  std::vector<SnapshotRecord> out;
  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  while (ReadCsvLine(in, &line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (Trim(line).empty()) continue;
    const auto f = ParseCsvLine(line);
    if (f.size() != 3) Fail("expected 3 fields", line_no);
    const TimePoint time = TimePoint::Parse(f[0]);
    const auto family = ParseFamily(f[1]);
    if (!family) Fail("unknown family", line_no);
    const auto ip = net::IPv4Address::Parse(f[2]);
    if (!ip) Fail("bad bot_ip", line_no);
    // Rows for the same (time, family) are contiguous by construction of the
    // writer; group them back into snapshots.
    if (out.empty() || out.back().time != time || out.back().family != *family) {
      out.push_back(SnapshotRecord{time, *family, {}});
    }
    out.back().bot_ips.push_back(*ip);
  }
  return out;
}

void SaveAttacksCsv(const std::string& path, std::span<const AttackRecord> attacks) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SaveAttacksCsv: cannot open " + path);
  WriteAttacksCsv(out, attacks);
}

std::vector<AttackRecord> LoadAttacksCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LoadAttacksCsv: cannot open " + path);
  return ReadAttacksCsv(in);
}

}  // namespace ddos::data
