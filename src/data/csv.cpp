#include "data/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/strings.h"

namespace ddos::data {

namespace {

[[noreturn]] void Fail(const char* what, std::size_t line_no) {
  throw std::runtime_error(StrFormat("CSV: %s at line %zu", what, line_no));
}

std::int64_t FieldInt(const std::vector<std::string>& fields, std::size_t idx,
                      std::size_t line_no) {
  const auto v = ParseInt64(fields.at(idx));
  if (!v) Fail("bad integer field", line_no);
  return *v;
}

double FieldDouble(const std::vector<std::string>& fields, std::size_t idx,
                   std::size_t line_no) {
  const auto v = ParseDouble(fields.at(idx));
  if (!v) Fail("bad numeric field", line_no);
  return *v;
}

AttackRecord ParseAttackRow(const std::vector<std::string>& f,
                            std::size_t line_no) {
  if (f.size() != 14) Fail("expected 14 fields", line_no);
  AttackRecord a;
  a.ddos_id = static_cast<std::uint64_t>(FieldInt(f, 0, line_no));
  a.botnet_id = static_cast<std::uint32_t>(FieldInt(f, 1, line_no));
  const auto family = ParseFamily(f[2]);
  if (!family) Fail("unknown family", line_no);
  a.family = *family;
  const auto protocol = ParseProtocol(f[3]);
  if (!protocol) Fail("unknown protocol", line_no);
  a.category = *protocol;
  const auto ip = net::IPv4Address::Parse(f[4]);
  if (!ip) Fail("bad target_ip", line_no);
  a.target_ip = *ip;
  a.start_time = TimePoint::Parse(f[5]);
  a.end_time = TimePoint::Parse(f[6]);
  a.asn = net::Asn(static_cast<std::uint32_t>(FieldInt(f, 7, line_no)));
  a.cc = f[8];
  a.city = f[9];
  a.location.lat_deg = FieldDouble(f, 10, line_no);
  a.location.lon_deg = FieldDouble(f, 11, line_no);
  a.organization = f[12];
  a.magnitude = static_cast<std::uint32_t>(FieldInt(f, 13, line_no));
  return a;
}

}  // namespace

bool ReadCsvLine(std::istream& in, std::string* line) {
  if (!std::getline(in, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void WriteAttacksCsv(std::ostream& out, std::span<const AttackRecord> attacks) {
  out << "ddos_id,botnet_id,family,category,target_ip,timestamp,end_time,asn,"
         "cc,city,latitude,longitude,organization,magnitude\n";
  for (const AttackRecord& a : attacks) {
    out << a.ddos_id << ',' << a.botnet_id << ',' << FamilyName(a.family) << ','
        << ProtocolName(a.category) << ',' << a.target_ip.ToString() << ','
        << a.start_time.ToString() << ',' << a.end_time.ToString() << ','
        << a.asn.value() << ',' << a.cc << ',' << CsvEscape(a.city) << ','
        << StrFormat("%.6f", a.location.lat_deg) << ','
        << StrFormat("%.6f", a.location.lon_deg) << ','
        << CsvEscape(a.organization) << ',' << a.magnitude << '\n';
  }
}

std::vector<AttackRecord> ReadAttacksCsv(std::istream& in) {
  std::vector<AttackRecord> out;
  AttackCsvReader reader(in);
  AttackRecord a;
  while (reader.Next(&a)) out.push_back(std::move(a));
  return out;
}

AttackCsvReader::AttackCsvReader(std::istream& in) : in_(&in) {}

AttackCsvReader::AttackCsvReader(const std::string& path)
    : file_(path), in_(&file_) {
  if (!file_) throw std::runtime_error("AttackCsvReader: cannot open " + path);
}

bool AttackCsvReader::Next(AttackRecord* out) {
  std::string line;
  while (ReadCsvLine(*in_, &line)) {
    ++line_no_;
    if (!header_skipped_) {
      header_skipped_ = true;
      continue;
    }
    if (Trim(line).empty()) continue;
    *out = ParseAttackRow(ParseCsvLine(line), line_no_);
    ++records_;
    return true;
  }
  return false;
}

void WriteBotnetsCsv(std::ostream& out, std::span<const BotnetRecord> botnets) {
  out << "botnet_id,family,controller_ip,first_seen,last_seen\n";
  for (const BotnetRecord& b : botnets) {
    out << b.botnet_id << ',' << FamilyName(b.family) << ','
        << b.controller_ip.ToString() << ',' << b.first_seen.ToString() << ','
        << b.last_seen.ToString() << '\n';
  }
}

std::vector<BotnetRecord> ReadBotnetsCsv(std::istream& in) {
  std::vector<BotnetRecord> out;
  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  while (ReadCsvLine(in, &line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (Trim(line).empty()) continue;
    const auto f = ParseCsvLine(line);
    if (f.size() != 5) Fail("expected 5 fields", line_no);
    BotnetRecord b;
    b.botnet_id = static_cast<std::uint32_t>(FieldInt(f, 0, line_no));
    const auto family = ParseFamily(f[1]);
    if (!family) Fail("unknown family", line_no);
    b.family = *family;
    const auto ip = net::IPv4Address::Parse(f[2]);
    if (!ip) Fail("bad controller_ip", line_no);
    b.controller_ip = *ip;
    b.first_seen = TimePoint::Parse(f[3]);
    b.last_seen = TimePoint::Parse(f[4]);
    out.push_back(b);
  }
  return out;
}

void WriteSnapshotsCsv(std::ostream& out, std::span<const SnapshotRecord> snaps) {
  out << "time,family,bot_ip\n";
  for (const SnapshotRecord& s : snaps) {
    const std::string stamp = s.time.ToString();
    for (const net::IPv4Address& ip : s.bot_ips) {
      out << stamp << ',' << FamilyName(s.family) << ',' << ip.ToString() << '\n';
    }
  }
}

std::vector<SnapshotRecord> ReadSnapshotsCsv(std::istream& in) {
  std::vector<SnapshotRecord> out;
  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  while (ReadCsvLine(in, &line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (Trim(line).empty()) continue;
    const auto f = ParseCsvLine(line);
    if (f.size() != 3) Fail("expected 3 fields", line_no);
    const TimePoint time = TimePoint::Parse(f[0]);
    const auto family = ParseFamily(f[1]);
    if (!family) Fail("unknown family", line_no);
    const auto ip = net::IPv4Address::Parse(f[2]);
    if (!ip) Fail("bad bot_ip", line_no);
    // Rows for the same (time, family) are contiguous by construction of the
    // writer; group them back into snapshots.
    if (out.empty() || out.back().time != time || out.back().family != *family) {
      out.push_back(SnapshotRecord{time, *family, {}});
    }
    out.back().bot_ips.push_back(*ip);
  }
  return out;
}

void SaveAttacksCsv(const std::string& path, std::span<const AttackRecord> attacks) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SaveAttacksCsv: cannot open " + path);
  WriteAttacksCsv(out, attacks);
}

std::vector<AttackRecord> LoadAttacksCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LoadAttacksCsv: cannot open " + path);
  return ReadAttacksCsv(in);
}

}  // namespace ddos::data
