#include "data/fault_injector.h"

#include <stdexcept>

#include "common/strings.h"
#include "common/time.h"
#include "data/csv.h"

namespace ddos::data {

namespace {

// Fresh ddos_ids for corrupted copies that would otherwise be rejected as
// duplicates before reaching the fault they were planted to exercise.
constexpr std::uint64_t kFreshIdBase = 1'000'000'000'000ULL;

enum FaultIndex {
  kFaultTruncate = 0,
  kFaultMangle,
  kFaultBitFlip,
  kFaultQuote,
  kFaultTimestamp,
  kFaultNegativeDuration,
  kFaultDuplicate,
  kFaultCount,
};

// Joins fields back into a CSV line; `raw_index` (if >= 0) is spliced in
// verbatim, bypassing escaping - how the quote fault plants a lone '"'.
std::string Rejoin(const std::vector<std::string>& fields, int raw_index = -1,
                   const std::string& raw_value = {}) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    if (static_cast<int>(i) == raw_index) {
      out += raw_value;
    } else {
      out += CsvEscape(fields[i]);
    }
  }
  return out;
}

// A prefix ending after the second comma: two fields where fourteen are
// expected, so the row can never parse by accident.
std::string CutShort(const std::string& line) {
  const std::size_t first = line.find(',');
  if (first == std::string::npos) return line.substr(0, line.size() / 2);
  const std::size_t second = line.find(',', first + 1);
  if (second == std::string::npos) return line.substr(0, first);
  return line.substr(0, second);
}

}  // namespace

FaultInjectorConfig FaultInjectorConfig::AllFaults(std::uint64_t seed,
                                                   double rate) {
  FaultInjectorConfig config;
  config.seed = seed;
  config.truncated_row_rate = rate;
  config.mangled_field_rate = rate;
  config.bit_flip_rate = rate;
  config.unterminated_quote_rate = rate;
  config.bad_timestamp_rate = rate;
  config.negative_duration_rate = rate;
  config.duplicate_row_rate = rate;
  config.torn_final_write = true;
  return config;
}

FaultInjector::FaultInjector(std::istream& source,
                             const FaultInjectorConfig& config)
    : buf_(source, config, &stats_), stream_(&buf_) {}

FaultInjector::Buf::Buf(std::istream& source,
                        const FaultInjectorConfig& config, FaultStats* stats)
    : source_(source), config_(config), stats_(stats), rng_(config.seed) {}

FaultInjector::Buf::int_type FaultInjector::Buf::underflow() {
  if (gptr() != nullptr && gptr() < egptr()) {
    return traits_type::to_int_type(*gptr());
  }
  do {
    if (!Refill()) return traits_type::eof();
  } while (pending_.empty());
  setg(pending_.data(), pending_.data(), pending_.data() + pending_.size());
  return traits_type::to_int_type(*gptr());
}

bool FaultInjector::Buf::Refill() {
  pending_.clear();
  if (done_) return false;
  std::string line;
  if (!ReadCsvLine(source_, &line)) {
    done_ = true;
    if (config_.torn_final_write && !last_clean_line_.empty()) {
      // A crash mid-write: a partial row with no terminating newline.
      pending_ = CutShort(last_clean_line_);
      ++stats_->corrupted_rows;
      ++stats_->injected[static_cast<std::size_t>(
          IngestErrorKind::kTruncatedLine)];
      return true;
    }
    return false;
  }
  if (!header_done_) {
    header_done_ = true;
    pending_ = line + "\n";
    return true;
  }
  if (Trim(line).empty()) {
    pending_ = line + "\n";
    return true;
  }
  Corrupt(line);
  return true;
}

void FaultInjector::Buf::Corrupt(const std::string& line) {
  const double rates[kFaultCount] = {
      config_.truncated_row_rate,  config_.mangled_field_rate,
      config_.bit_flip_rate,       config_.unterminated_quote_rate,
      config_.bad_timestamp_rate,  config_.negative_duration_rate,
      config_.duplicate_row_rate};
  const double u = rng_.NextDouble();
  int fault = -1;
  double acc = 0.0;
  for (int i = 0; i < kFaultCount; ++i) {
    acc += rates[i];
    if (u < acc) {
      fault = i;
      break;
    }
  }

  std::string corrupted;
  IngestErrorKind kind = IngestErrorKind::kBadFieldCount;
  bool planted = false;
  if (fault >= 0) {
    std::vector<std::string> f = ParseCsvLine(line);
    // Only corrupt well-formed source rows: every plant must map to one
    // predictable IngestErrorKind, so pre-damaged rows pass through.
    if (f.size() == 14) {
      switch (fault) {
        case kFaultTruncate:
          corrupted = CutShort(line);
          kind = IngestErrorKind::kBadFieldCount;
          planted = true;
          break;
        case kFaultMangle:
          f[10] = "nan";
          corrupted = Rejoin(f);
          kind = IngestErrorKind::kUnparseableNumber;
          planted = true;
          break;
        case kFaultBitFlip:
          for (char& c : f[13]) {
            if (c >= '0' && c <= '9') {
              c = static_cast<char>(c | 0x40);  // digit -> 'p'..'y'
              planted = true;
              break;
            }
          }
          if (planted) {
            corrupted = Rejoin(f);
            kind = IngestErrorKind::kUnparseableNumber;
          }
          break;
        case kFaultQuote:
          corrupted = Rejoin(f, 9, "\"torn");
          kind = IngestErrorKind::kUnterminatedQuote;
          planted = true;
          break;
        case kFaultTimestamp:
          f[5] = "2150-01-01 00:00:00";
          corrupted = Rejoin(f);
          kind = IngestErrorKind::kOutOfRangeTimestamp;
          planted = true;
          break;
        case kFaultNegativeDuration:
          try {
            const TimePoint start = TimePoint::Parse(f[5]);
            f[6] = (start - kSecondsPerHour).ToString();
            f[0] = std::to_string(kFreshIdBase + fresh_id_++);
            corrupted = Rejoin(f);
            kind = IngestErrorKind::kNegativeDuration;
            planted = true;
          } catch (const std::invalid_argument&) {
            planted = false;
          }
          break;
        case kFaultDuplicate:
          corrupted = line;
          kind = IngestErrorKind::kDuplicateId;
          planted = true;
          break;
      }
    }
  }

  if (!planted) {
    pending_ = line + "\n";
    ++stats_->clean_rows;
    last_clean_line_ = line;
    return;
  }
  // A duplicate only trips duplicate-id if the original precedes it, so it
  // is additive even in destructive mode.
  if (config_.destructive && fault != kFaultDuplicate) {
    pending_ = corrupted + "\n";
    ++stats_->lost_rows;
  } else {
    pending_ = line + "\n" + corrupted + "\n";
    ++stats_->clean_rows;
    last_clean_line_ = line;
  }
  ++stats_->corrupted_rows;
  ++stats_->injected[static_cast<std::size_t>(kind)];
}

}  // namespace ddos::data
