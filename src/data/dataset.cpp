#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace ddos::data {

void Dataset::AddAttack(AttackRecord attack) {
  if (finalized_) throw std::logic_error("Dataset: AddAttack after Finalize");
  attacks_.push_back(std::move(attack));
}

void Dataset::AddBot(BotRecord bot) {
  if (finalized_) throw std::logic_error("Dataset: AddBot after Finalize");
  bots_.push_back(bot);
}

void Dataset::AddBotnet(BotnetRecord botnet) {
  if (finalized_) throw std::logic_error("Dataset: AddBotnet after Finalize");
  botnets_.push_back(botnet);
}

void Dataset::AddSnapshot(SnapshotRecord snapshot) {
  if (finalized_) throw std::logic_error("Dataset: AddSnapshot after Finalize");
  snapshots_.push_back(std::move(snapshot));
}

void Dataset::Finalize() {
  if (finalized_) throw std::logic_error("Dataset: Finalize called twice");

  std::sort(attacks_.begin(), attacks_.end(),
            [](const AttackRecord& a, const AttackRecord& b) {
              if (a.start_time != b.start_time) return a.start_time < b.start_time;
              return a.ddos_id < b.ddos_id;
            });
  std::sort(snapshots_.begin(), snapshots_.end(),
            [](const SnapshotRecord& a, const SnapshotRecord& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.family < b.family;
            });
  std::sort(botnets_.begin(), botnets_.end(),
            [](const BotnetRecord& a, const BotnetRecord& b) {
              return a.botnet_id < b.botnet_id;
            });

  // Deduplicate bots by IP, merging the observation interval.
  std::sort(bots_.begin(), bots_.end(), [](const BotRecord& a, const BotRecord& b) {
    return a.ip < b.ip;
  });
  std::vector<BotRecord> merged;
  merged.reserve(bots_.size());
  for (const BotRecord& b : bots_) {
    if (!merged.empty() && merged.back().ip == b.ip) {
      merged.back().first_seen = std::min(merged.back().first_seen, b.first_seen);
      merged.back().last_seen = std::max(merged.back().last_seen, b.last_seen);
    } else {
      merged.push_back(b);
    }
  }
  bots_ = std::move(merged);

  family_attacks_.assign(kFamilyCount, {});
  family_snapshots_.assign(kFamilyCount, {});
  for (std::size_t i = 0; i < attacks_.size(); ++i) {
    family_attacks_[static_cast<std::size_t>(attacks_[i].family)].push_back(i);
    target_attacks_[attacks_[i].target_ip.bits()].push_back(i);
  }
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    family_snapshots_[static_cast<std::size_t>(snapshots_[i].family)].push_back(i);
  }

  if (!attacks_.empty()) {
    window_begin_ = attacks_.front().start_time;
    window_end_ = window_begin_;
    for (const AttackRecord& a : attacks_) {
      window_end_ = std::max(window_end_, a.end_time);
    }
  }
  finalized_ = true;
}

void Dataset::RequireFinalized() const {
  if (!finalized_) throw std::logic_error("Dataset: not finalized");
}

std::span<const AttackRecord> Dataset::attacks() const {
  RequireFinalized();
  return attacks_;
}

std::span<const BotRecord> Dataset::bots() const {
  RequireFinalized();
  return bots_;
}

std::span<const BotnetRecord> Dataset::botnets() const {
  RequireFinalized();
  return botnets_;
}

std::span<const SnapshotRecord> Dataset::snapshots() const {
  RequireFinalized();
  return snapshots_;
}

std::span<const std::size_t> Dataset::AttacksOfFamily(Family f) const {
  RequireFinalized();
  return family_attacks_[static_cast<std::size_t>(f)];
}

std::span<const std::size_t> Dataset::AttacksOnTarget(net::IPv4Address target) const {
  RequireFinalized();
  const auto it = target_attacks_.find(target.bits());
  if (it == target_attacks_.end()) return {};
  return it->second;
}

std::vector<net::IPv4Address> Dataset::Targets() const {
  RequireFinalized();
  std::vector<net::IPv4Address> out;
  out.reserve(target_attacks_.size());
  for (const auto& [bits, _] : target_attacks_) {
    out.push_back(net::IPv4Address(bits));
  }
  return out;
}

std::span<const std::size_t> Dataset::SnapshotsOfFamily(Family f) const {
  RequireFinalized();
  return family_snapshots_[static_cast<std::size_t>(f)];
}

}  // namespace ddos::data
