// Versioned binary columnar storage for attack records.
//
// Re-parsing the 14-column CSV dominates replay cost even after the
// parse-in-shard refactor; archived feeds that are replayed many times
// (batch analyses, bench sweeps, warm-starting a daemon) deserve a format
// that streams at memory bandwidth. `ddoscope convert` writes it; the
// readers below plug into StreamEngine and ShardedStreamEngine wherever an
// AttackCsvReader fits.
//
// File layout (all integers little-endian, common/binio.h):
//
//   offset  size  field
//   0       8     magic "DDBINREC"
//   8       4     format version (1)
//   12      4     writer's records-per-block hint (informational)
//   --- repeated blocks ---
//   +0      4     record count n in this block (> 0)
//   +4      8     payload size in bytes
//   +12     p     payload: column arrays (below)
//   +12+p   8     FNV-1a 64 checksum of the payload
//   --- terminator ---
//   +0      4     record count 0 (end of stream)
//
// Block payload, in schema column order: ddos_id n*u64, botnet_id n*u32,
// family n*u8, category n*u8, target_ip n*u32, start_time n*i64, end_time
// n*i64, asn n*u32, cc dict, city dict, latitude n*f64, longitude n*f64,
// organization dict, magnitude n*u32. A string dictionary is `u32 m`
// unique strings (u32 length + bytes each) followed by n u32 indexes -
// country codes and organizations repeat heavily across a feed, so blocks
// mostly carry 4-byte indexes where the CSV carried quoted text.
//
// Version policy: the version field names the whole layout; readers reject
// versions they do not know (kUnsupportedVersion) rather than guessing.
// Additive evolution appends new columns to the payload *behind* a version
// bump, and readers keep accepting every version they ever shipped -
// the checkpoint format's compatibility discipline (stream/checkpoint.h).
//
// Every failure mode is a typed BinaryFormatError: bad magic, unknown
// version, truncation, checksum mismatch, or a structurally corrupt block
// (the checksum is verified *before* any payload decoding, so a bit-flip
// is diagnosed as such instead of crashing the decoder). The terminator
// block distinguishes clean EOF from a file cut mid-stream.
#ifndef DDOSCOPE_DATA_BINRECORDS_H_
#define DDOSCOPE_DATA_BINRECORDS_H_

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/ingest_error.h"
#include "data/records.h"

namespace ddos::data {

inline constexpr std::uint32_t kBinaryRecordVersion = 1;

// Typed failure: every way a binary record file can be refused.
class BinaryFormatError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kBadMagic,            // not a DDBINREC file
    kUnsupportedVersion,  // written by a newer (or unknown) layout
    kTruncated,           // stream ended mid-block or without a terminator
    kChecksumMismatch,    // payload bytes do not match their checksum
    kCorruptField,        // checksum fine but the structure is inconsistent
  };

  BinaryFormatError(Kind kind, const std::string& what)
      : std::runtime_error("binrecords: " + what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct BinaryWriteOptions {
  // Records buffered per block. Larger blocks dictionary-compress better;
  // smaller ones bound the reader's working set. 4096 rows ~ a few hundred
  // KiB of payload on the reference feed.
  std::size_t block_records = 4096;
};

// Streams records out in columnar blocks. The path constructor stages to
// `path + ".tmp"` and Close() renames into place (checkpoint discipline:
// a crash mid-convert never leaves a truncated file at the final path).
class BinaryRecordWriter {
 public:
  explicit BinaryRecordWriter(std::ostream& out, BinaryWriteOptions opts = {});
  explicit BinaryRecordWriter(const std::string& path,
                              BinaryWriteOptions opts = {});
  // Best-effort Close(); errors swallowed (the stage file, if any, is
  // removed). Call Close() explicitly to observe failures.
  ~BinaryRecordWriter();

  BinaryRecordWriter(const BinaryRecordWriter&) = delete;
  BinaryRecordWriter& operator=(const BinaryRecordWriter&) = delete;

  void Write(const AttackRecord& record);

  // Flushes the final partial block, writes the terminator, and (path
  // constructor) publishes the staged file. Idempotent; Write after Close
  // throws std::logic_error.
  void Close();

  std::uint64_t written() const { return written_; }

 private:
  void FlushBlock();

  std::string path_;      // final path ("" under the stream constructor)
  std::string tmp_path_;  // stage file ("" under the stream constructor)
  std::ofstream file_;    // engaged only by the path constructor
  std::ostream* out_;
  BinaryWriteOptions opts_;
  std::vector<AttackRecord> pending_;
  std::uint64_t written_ = 0;
  bool closed_ = false;
};

// Streaming reader; one block decoded at a time, so memory stays bounded
// by the writer's block size regardless of file size.
class BinaryRecordReader {
 public:
  explicit BinaryRecordReader(std::istream& in);
  // Throws std::runtime_error when the file cannot be opened,
  // BinaryFormatError when its header is not a DDBINREC v1 header.
  explicit BinaryRecordReader(const std::string& path);

  // Fills *out with the next record; false at clean end of stream. Throws
  // BinaryFormatError on any corruption.
  bool Next(AttackRecord* out);

  // Fast-forwards `n` records (the count-based resume path: a checkpoint's
  // meta.records). Whole blocks inside the skip are checksum-verified but
  // not decoded. Throws BinaryFormatError if the stream ends first.
  void SkipRecords(std::uint64_t n);

  std::uint64_t records_read() const { return records_; }

 private:
  // Reads and checksum-verifies the next block into payload_. Returns its
  // record count, 0 at the terminator. Decoding is separate so the skip
  // fast path can discard a verified payload without materializing it.
  std::uint32_t LoadBlockRaw();
  void DecodeBlock(std::uint32_t n);

  std::ifstream file_;  // engaged only by the path constructor
  std::istream* in_;
  std::vector<AttackRecord> block_;
  std::size_t block_pos_ = 0;
  std::uint64_t records_ = 0;
  bool eof_ = false;
  std::string payload_;  // reused block buffer
};

// Reads `csv_path` with AttackCsvReader under `options` and writes the
// valid records to `bin_path` (atomically). Rejected rows follow the
// options' policy exactly as in a watch run; per-kind tallies are added to
// *report when non-null. Returns the number of records written.
std::uint64_t ConvertAttacksCsvToBinary(const std::string& csv_path,
                                        const std::string& bin_path,
                                        const ParseOptions& options,
                                        IngestErrorReport* report = nullptr,
                                        BinaryWriteOptions write_opts = {});

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_BINRECORDS_H_
