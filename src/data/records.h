// The three record schemas of the dataset (Section II-A, Table I).
//
// The monitoring service exposes a Botlist schema (per-bot IP/BGP/GeoIP), a
// Botnetlist schema (per-botnet metadata) and a DDoSattack schema (one row
// per verified attack). The paper joins the three into a comprehensive
// dataset; here they are plain value structs that `Dataset` owns and
// indexes. `SnapshotRecord` captures the hourly reporting regime: each
// botnet family is snapshotted every hour, and each snapshot lists the bots
// active over the trailing 24 hours.
#ifndef DDOSCOPE_DATA_RECORDS_H_
#define DDOSCOPE_DATA_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "data/taxonomy.h"
#include "geo/coord.h"
#include "net/ipv4.h"

namespace ddos::data {

// One verified DDoS attack (DDoSattack schema + joined GeoIP of the target).
struct AttackRecord {
  std::uint64_t ddos_id = 0;      // globally unique attack identifier
  std::uint32_t botnet_id = 0;    // which botnet (generation) launched it
  Family family = Family::kAldibot;
  Protocol category = Protocol::kUnknown;
  net::IPv4Address target_ip;
  TimePoint start_time;           // Table I 'timestamp'
  TimePoint end_time;
  net::Asn asn;                   // AS of the target
  std::string cc;                 // target country (ISO3166-1 alpha-2)
  std::string city;               // target city
  geo::Coordinate location;       // target latitude/longitude
  std::string organization;       // target organization
  // Number of distinct bot IPs observed participating: the paper's proxy
  // for attack magnitude (Section III-B assumes no IP spoofing).
  std::uint32_t magnitude = 0;

  std::int64_t duration_seconds() const { return end_time - start_time; }
};

// One bot as listed in the Botlist schema.
struct BotRecord {
  net::IPv4Address ip;
  Family family = Family::kAldibot;
  std::uint32_t botnet_id = 0;
  TimePoint first_seen;
  TimePoint last_seen;
};

// One botnet (a generation of a family, keyed by malware hash upstream).
struct BotnetRecord {
  std::uint32_t botnet_id = 0;
  Family family = Family::kAldibot;
  net::IPv4Address controller_ip;  // C&C host used to control the botnet
  TimePoint first_seen;
  TimePoint last_seen;
};

// Hourly family snapshot: bots seen participating over the past 24 hours.
struct SnapshotRecord {
  TimePoint time;
  Family family = Family::kAldibot;
  std::vector<net::IPv4Address> bot_ips;
};

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_RECORDS_H_
