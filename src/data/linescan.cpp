#include "data/linescan.h"

#include <cstring>

#include "common/strings.h"
#include "data/csv.h"
#include "net/ipv4.h"

namespace ddos::data {

bool LineSpanScanner::Next(LineSpan* out) {
  if (pos_ >= buffer_.size()) return false;
  const std::size_t start = static_cast<std::size_t>(pos_);
  const void* nl =
      std::memchr(buffer_.data() + start, '\n', buffer_.size() - start);
  std::size_t end;
  bool saw_newline;
  if (nl != nullptr) {
    end = static_cast<std::size_t>(static_cast<const char*>(nl) -
                                   buffer_.data());
    pos_ = end + 1;
    saw_newline = true;
  } else {
    end = buffer_.size();
    pos_ = end;
    saw_newline = false;
  }
  std::size_t len = end - start;
  // CRLF: the '\r' is line-ending bytes, not data (same as ReadCsvLine).
  if (len > 0 && buffer_[start + len - 1] == '\r') --len;
  out->text = buffer_.substr(start, len);
  out->line_no = ++line_no_;
  out->offset = start;
  out->saw_newline = saw_newline;
  return true;
}

bool AttackLinePreScanner::Scan(std::string_view line, AttackLinePreScan* out,
                                IngestError* err) {
  const auto fail = [err](IngestErrorKind kind, std::string detail) {
    err->kind = kind;
    err->detail = std::move(detail);
    return false;
  };

  // Walk the line with ParseCsvLineInto's exact quoting state machine, but
  // materialize only the five routed columns; every other field just
  // advances the quote/field state. Scratch slot per column of interest:
  //   0 ddos_id, 1 botnet_id, 4 target_ip, 5 timestamp, 6 end_time.
  static constexpr int kSlot[14] = {0,  1,  -1, -1, 2,  3,  4,
                                    -1, -1, -1, -1, -1, -1, -1};
  std::size_t field = 0;
  std::string* cur = &scratch_[0];
  cur->clear();
  bool in_quotes = false;
  bool at_field_start = true;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          if (cur != nullptr) cur->push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else if (cur != nullptr) {
        cur->push_back(c);
      }
    } else if (c == '"' && at_field_start) {
      in_quotes = true;
      at_field_start = false;
    } else if (c == ',') {
      ++field;
      at_field_start = true;
      cur = nullptr;
      if (field < 14 && kSlot[field] >= 0) {
        cur = &scratch_[static_cast<std::size_t>(kSlot[field])];
        cur->clear();
      }
    } else {
      if (cur != nullptr) cur->push_back(c);
      at_field_start = false;
    }
  }
  // Rejection order matches AttackCsvReader::Next: quote state first, then
  // field count, then per-field validation in column order - so a
  // single-defect row is attributed the same IngestErrorKind either way.
  if (in_quotes) {
    return fail(IngestErrorKind::kUnterminatedQuote,
                "line ended inside a quoted field");
  }
  const std::size_t count = field + 1;
  if (count != 14) {
    return fail(IngestErrorKind::kBadFieldCount,
                StrFormat("expected 14 fields, got %zu", count));
  }
  const auto ddos_id = ParseInt64(scratch_[0]);
  if (!ddos_id || *ddos_id < 0) {
    return fail(IngestErrorKind::kUnparseableNumber,
                "bad ddos_id '" + scratch_[0] + "'");
  }
  out->ddos_id = static_cast<std::uint64_t>(*ddos_id);
  const auto botnet_id = ParseInt64(scratch_[1]);
  if (!botnet_id) {
    return fail(IngestErrorKind::kUnparseableNumber,
                "bad botnet_id '" + scratch_[1] + "'");
  }
  out->botnet_id = static_cast<std::uint32_t>(*botnet_id);
  const auto ip = net::IPv4Address::Parse(scratch_[2]);
  if (!ip) {
    return fail(IngestErrorKind::kUnparseableNumber,
                "bad target_ip '" + scratch_[2] + "'");
  }
  out->target_bits = ip->bits();
  for (const std::size_t slot : {std::size_t{3}, std::size_t{4}}) {
    const auto t = TimePoint::TryParse(scratch_[slot]);
    if (!t) {
      return fail(IngestErrorKind::kOutOfRangeTimestamp,
                  "malformed timestamp '" + scratch_[slot] + "'");
    }
    if (*t < kMinAttackTimestamp || *t > kMaxAttackTimestamp) {
      return fail(IngestErrorKind::kOutOfRangeTimestamp,
                  "timestamp '" + scratch_[slot] + "' outside 1970..2100");
    }
    (slot == 3 ? out->start_s : out->end_s) = t->seconds();
  }
  if (out->end_s < out->start_s) {
    return fail(IngestErrorKind::kNegativeDuration,
                StrFormat("end_time precedes timestamp by %lld s",
                          static_cast<long long>(out->start_s - out->end_s)));
  }
  return true;
}

}  // namespace ddos::data
