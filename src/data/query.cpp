#include "data/query.h"

namespace ddos::data {

AttackQuery& AttackQuery::WithFamily(Family family) {
  families_.insert(family);
  return *this;
}

AttackQuery& AttackQuery::WithFamilies(std::span<const Family> families) {
  families_.insert(families.begin(), families.end());
  return *this;
}

AttackQuery& AttackQuery::WithProtocol(Protocol protocol) {
  protocol_ = protocol;
  return *this;
}

AttackQuery& AttackQuery::WithTargetCountry(std::string cc) {
  target_country_ = std::move(cc);
  return *this;
}

AttackQuery& AttackQuery::WithTarget(net::IPv4Address target) {
  target_ = target;
  return *this;
}

AttackQuery& AttackQuery::WithBotnet(std::uint32_t botnet_id) {
  botnet_id_ = botnet_id;
  return *this;
}

AttackQuery& AttackQuery::StartingBetween(TimePoint begin, TimePoint end) {
  begin_ = begin;
  end_ = end;
  return *this;
}

AttackQuery& AttackQuery::WithMinDuration(std::int64_t seconds) {
  min_duration_s_ = seconds;
  return *this;
}

AttackQuery& AttackQuery::WithMaxDuration(std::int64_t seconds) {
  max_duration_s_ = seconds;
  return *this;
}

AttackQuery& AttackQuery::WithMinMagnitude(std::uint32_t bots) {
  min_magnitude_ = bots;
  return *this;
}

bool AttackQuery::Matches(const AttackRecord& attack) const {
  if (!families_.empty() && families_.count(attack.family) == 0) return false;
  if (protocol_ && attack.category != *protocol_) return false;
  if (target_country_ && attack.cc != *target_country_) return false;
  if (target_ && attack.target_ip != *target_) return false;
  if (botnet_id_ && attack.botnet_id != *botnet_id_) return false;
  if (begin_ && attack.start_time < *begin_) return false;
  if (end_ && attack.start_time >= *end_) return false;
  if (min_duration_s_ && attack.duration_seconds() < *min_duration_s_) return false;
  if (max_duration_s_ && attack.duration_seconds() > *max_duration_s_) return false;
  if (min_magnitude_ && attack.magnitude < *min_magnitude_) return false;
  return true;
}

std::vector<std::size_t> AttackQuery::Run(const Dataset& dataset) const {
  std::vector<std::size_t> out;
  // Start from the narrowest available index.
  if (target_) {
    for (const std::size_t idx : dataset.AttacksOnTarget(*target_)) {
      if (Matches(dataset.attacks()[idx])) out.push_back(idx);
    }
    return out;
  }
  if (families_.size() == 1) {
    for (const std::size_t idx : dataset.AttacksOfFamily(*families_.begin())) {
      if (Matches(dataset.attacks()[idx])) out.push_back(idx);
    }
    return out;
  }
  for (std::size_t idx = 0; idx < dataset.attacks().size(); ++idx) {
    if (Matches(dataset.attacks()[idx])) out.push_back(idx);
  }
  return out;
}

std::size_t AttackQuery::Count(const Dataset& dataset) const {
  return Run(dataset).size();
}

}  // namespace ddos::data
