// Deterministic fault injection for attack-CSV streams.
//
// Real monitoring feeds arrive with torn writes, mangled fields, and
// duplicated rows; the resilient ingestion path (ParsePolicy::kSkip /
// kQuarantine) exists to survive them, and this wrapper exists to prove it
// does. FaultInjector wraps any std::istream carrying an attack CSV and
// exposes a corrupted view of it, driven by the ddos::common xoshiro RNG so
// a given (stream, seed, rates) triple reproduces byte-identical corruption
// on every run.
//
// Each fault is engineered to trip exactly one IngestErrorKind, and the
// injector tallies its plants per expected kind, so a test can assert the
// reader's IngestErrorReport matches the injection record *exactly* - not
// just "some errors were seen".
//
// By default corruption is additive: a faulted row is emitted as an extra
// corrupted copy alongside the clean original (the model of a flaky
// upstream writer interleaving garbage between good records). This makes
// lossless-recovery assertions possible: filtering the corrupted stream
// through the resilient reader must reproduce the clean stream record for
// record. Setting `destructive` instead corrupts rows in place, modeling
// media damage where the original is unrecoverable.
#ifndef DDOSCOPE_DATA_FAULT_INJECTOR_H_
#define DDOSCOPE_DATA_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>

#include "common/rng.h"
#include "data/ingest_error.h"

namespace ddos::data {

struct FaultInjectorConfig {
  std::uint64_t seed = 1;
  // Per-data-row probabilities; at most one fault fires per row. Each maps
  // to the IngestErrorKind named on the right.
  double truncated_row_rate = 0.0;      // row cut mid-field -> bad-field-count
  double mangled_field_rate = 0.0;      // latitude becomes "nan" -> unparseable-number
  double bit_flip_rate = 0.0;           // flipped bit turns a magnitude digit
                                        // into a letter -> unparseable-number
  double unterminated_quote_rate = 0.0; // lone '"' opens the city field -> unterminated-quote
  double bad_timestamp_rate = 0.0;      // start moves to year 2150 -> out-of-range-timestamp
  double negative_duration_rate = 0.0;  // end rewound before start (fresh
                                        // ddos_id) -> negative-duration
  double duplicate_row_rate = 0.0;      // row re-emitted verbatim -> duplicate-id
  // Cut the final row short and drop its newline -> truncated-line.
  bool torn_final_write = false;
  // Corrupt rows in place (the clean original is lost) instead of emitting
  // corrupted copies next to it.
  bool destructive = false;

  // Every fault class active at `rate`, the configuration the soak bench
  // runs with.
  static FaultInjectorConfig AllFaults(std::uint64_t seed, double rate);
};

// What was planted, bucketed by the IngestErrorKind each plant must trip.
struct FaultStats {
  std::array<std::uint64_t, kIngestErrorKindCount> injected{};
  std::uint64_t clean_rows = 0;      // rows passed through unharmed
  std::uint64_t corrupted_rows = 0;  // corrupted copies / rewrites emitted
  std::uint64_t lost_rows = 0;       // originals destroyed (destructive mode)

  std::uint64_t injected_for(IngestErrorKind kind) const {
    return injected[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected() const {
    std::uint64_t t = 0;
    for (const std::uint64_t n : injected) t += n;
    return t;
  }
};

// The corrupting stream wrapper. Reads `source` lazily, one line at a time,
// so wrapping a multi-gigabyte trace costs one line of buffering.
class FaultInjector {
 public:
  FaultInjector(std::istream& source, const FaultInjectorConfig& config);

  // The corrupted view; feed this to AttackCsvReader.
  std::istream& stream() { return stream_; }
  const FaultStats& stats() const { return stats_; }

 private:
  class Buf : public std::streambuf {
   public:
    Buf(std::istream& source, const FaultInjectorConfig& config,
        FaultStats* stats);

   protected:
    int_type underflow() override;

   private:
    bool Refill();  // false once source (and the torn tail) are exhausted
    void Corrupt(const std::string& line);

    std::istream& source_;
    FaultInjectorConfig config_;
    FaultStats* stats_;
    Rng rng_;
    std::string pending_;
    std::string last_clean_line_;
    std::uint64_t fresh_id_ = 0;  // for faults that must not collide on ddos_id
    bool header_done_ = false;
    bool done_ = false;
  };

  FaultStats stats_;
  Buf buf_;
  std::istream stream_;
};

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_FAULT_INJECTOR_H_
