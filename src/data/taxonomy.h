// Botnet family and attack-protocol taxonomy.
//
// The dataset tracks 23 botnet families of which 10 are active enough to be
// characterized (Section III): Aldibot, Blackenergy, Colddeath, Darkshell,
// Ddoser, Dirtjumper, Nitol, Optima, Pandora and YZF. The remaining minor
// families appear in botnet/bot listings but contribute a negligible number
// of attacks. Attack categories ("the nature of the attack", Table I) take
// one of seven protocol values (Fig 1).
#ifndef DDOSCOPE_DATA_TAXONOMY_H_
#define DDOSCOPE_DATA_TAXONOMY_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace ddos::data {

enum class Family : std::uint8_t {
  // The 10 active families characterized throughout the paper.
  kAldibot,
  kBlackenergy,
  kColddeath,
  kDarkshell,
  kDdoser,
  kDirtjumper,
  kNitol,
  kOptima,
  kPandora,
  kYzf,
  // Minor families: tracked in the botnet listings, near-zero attack volume.
  kArmageddon,
  kIllusion,
  kInfinity,
  kImddos,
  kGumblar,
  kZeus,
  kKelihos,
  kAsprox,
  kFesti,
  kWaledac,
  kTorpig,
  kRamnit,
  kVirut,
};

inline constexpr int kFamilyCount = 23;
inline constexpr int kActiveFamilyCount = 10;

// The 10 active families, in the paper's (alphabetical) order.
std::span<const Family> ActiveFamilies();
// All 23 families.
std::span<const Family> AllFamilies();

std::string_view FamilyName(Family f);
std::optional<Family> ParseFamily(std::string_view name);  // case-insensitive
bool IsActive(Family f);

enum class Protocol : std::uint8_t {
  kHttp,
  kTcp,
  kUdp,
  kIcmp,
  kSyn,
  kUndetermined,  // attack using multiple protocols
  kUnknown,       // traffic of unknown type
};

inline constexpr int kProtocolCount = 7;

std::span<const Protocol> AllProtocols();
std::string_view ProtocolName(Protocol p);
std::optional<Protocol> ParseProtocol(std::string_view name);

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_TAXONOMY_H_
