// Typed ingestion-error taxonomy, error-policy selection, and quarantine.
//
// The paper's pipeline consumed a 207-day commercial monitoring feed; feeds
// of that kind arrive with torn writes, mangled fields, and duplicated rows,
// and a multi-day `ddoscope watch` run must not discard its state over one
// bad line. This header defines the failure vocabulary shared by the CSV
// readers, the fault injector, and the CLI:
//
//  * IngestErrorKind - every way a row can be rejected, one enumerator per
//    observable failure, so operators can tell a truncated transfer (lots of
//    kTruncatedLine) from an upstream schema drift (lots of kBadFieldCount).
//  * ParsePolicy - what the reader does on a bad row: kStrict throws (the
//    historical behavior and still the default), kSkip counts and drops,
//    kQuarantine counts and preserves the raw line for later replay.
//  * IngestErrorReport - per-kind counters accumulated by a reader.
//  * QuarantineWriter - writes each rejected line, prefixed by a '#' comment
//    carrying the line number and diagnosis; stripping '#' lines yields a
//    replayable CSV fragment.
#ifndef DDOSCOPE_DATA_INGEST_ERROR_H_
#define DDOSCOPE_DATA_INGEST_ERROR_H_

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

namespace ddos::data {

enum class IngestErrorKind : std::uint8_t {
  kBadFieldCount = 0,       // wrong number of CSV fields
  kUnparseableNumber,       // numeric/enum/ip/coordinate field unreadable
  kUnterminatedQuote,       // line ended inside a quoted field
  kOutOfRangeTimestamp,     // timestamp malformed or outside [1970, 2100]
  kNegativeDuration,        // end_time earlier than timestamp
  kDuplicateId,             // ddos_id already ingested in this stream
  kTruncatedLine,           // stream ended mid-record (torn write) or the
                            // line exceeded the configured length cap
};

inline constexpr int kIngestErrorKindCount = 7;

std::string_view IngestErrorKindName(IngestErrorKind kind);

// One rejected row.
struct IngestError {
  IngestErrorKind kind = IngestErrorKind::kBadFieldCount;
  std::size_t line_no = 0;
  std::string detail;    // human-readable diagnosis ("bad integer field 7")
  std::string raw_line;  // the offending line, verbatim
};

enum class ParsePolicy : std::uint8_t {
  kStrict = 0,  // throw std::runtime_error on the first bad row
  kSkip,        // count the error and continue with the next row
  kQuarantine,  // count, write the raw line to the quarantine, continue
};

// Per-kind tallies for one ingestion run.
struct IngestErrorReport {
  std::array<std::uint64_t, kIngestErrorKindCount> counts{};

  void Add(IngestErrorKind kind) {
    ++counts[static_cast<std::size_t>(kind)];
  }
  std::uint64_t count(IngestErrorKind kind) const {
    return counts[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const std::uint64_t c : counts) t += c;
    return t;
  }
  // Multi-line "  kind: n" listing of the non-zero kinds; empty when clean.
  std::string ToString() const;
};

// Preserves rejected raw lines for offline inspection and replay. Each
// rejection becomes two lines:
//
//   # line 1742: unparseable-number: bad integer field 7
//   8841,12,Dirtjumper,syn,10.0.0.1,...,notanum,...
//
// so `grep -v '^#' quarantine.csv` (plus a header) is feedable back through
// the reader once the upstream defect is fixed.
//
// The path constructor follows the same stage-and-rename discipline as
// checkpoints (stream/checkpoint.h): lines accumulate in `path + ".tmp"`
// and Close() atomically renames the finished file into place, so `path`
// is only ever a complete quarantine. A failed write or rename removes the
// stage file instead of leaving a half-written .tmp behind; a crash
// mid-run leaves only the clearly-partial .tmp, never a truncated `path`.
class QuarantineWriter {
 public:
  // Stages to `path + ".tmp"`; throws std::runtime_error on failure.
  explicit QuarantineWriter(const std::string& path);
  // Writes to a caller-owned stream (kept alive by the caller). Close() is
  // then a flush; nothing is staged or renamed.
  explicit QuarantineWriter(std::ostream& out);
  // Best-effort Close(); errors are swallowed (the stage file, if any, is
  // still removed). Call Close() explicitly to observe failures.
  ~QuarantineWriter();

  QuarantineWriter(const QuarantineWriter&) = delete;
  QuarantineWriter& operator=(const QuarantineWriter&) = delete;

  void Write(const IngestError& error);

  // Publishes the staged file at its final path. Throws std::runtime_error
  // when any write or the rename failed - after deleting the .tmp file, so
  // a failure never leaves debris. Idempotent; Write after Close throws.
  void Close();

  std::size_t written() const { return written_; }

 private:
  std::string path_;      // final path ("" under the stream constructor)
  std::string tmp_path_;  // stage file ("" under the stream constructor)
  std::ofstream file_;    // engaged only by the path constructor
  std::ostream* out_;
  bool closed_ = false;
  std::size_t written_ = 0;
};

}  // namespace ddos::data

#endif  // DDOSCOPE_DATA_INGEST_ERROR_H_
