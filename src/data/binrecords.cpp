#include "data/binrecords.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/binio.h"
#include "common/strings.h"
#include "data/taxonomy.h"

namespace ddos::data {

namespace {

constexpr char kMagic[8] = {'D', 'D', 'B', 'I', 'N', 'R', 'E', 'C'};

// Structural sanity caps: refuse to allocate for a block whose header is
// plainly garbage even though its bytes might checksum (e.g. a file that
// is not ours past a colliding prefix).
constexpr std::uint32_t kMaxBlockRecords = 1u << 24;
constexpr std::uint64_t kMaxBlockPayload = 1ull << 31;

using Kind = BinaryFormatError::Kind;

// --- payload building (little-endian appends into a std::string) ---

void PutU8(std::string* s, std::uint8_t v) {
  s->push_back(static_cast<char>(v));
}

void PutU32(std::string* s, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  s->append(b, 4);
}

void PutU64(std::string* s, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  s->append(b, 8);
}

void PutI64(std::string* s, std::int64_t v) {
  PutU64(s, static_cast<std::uint64_t>(v));
}

void PutF64(std::string* s, double v) {
  PutU64(s, std::bit_cast<std::uint64_t>(v));
}

// --- payload decoding (bounds-checked cursor over verified bytes) ---

struct Cursor {
  const char* p;
  const char* end;

  void Need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw BinaryFormatError(Kind::kCorruptField,
                              "column data overruns the block payload");
    }
  }
  std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  std::uint32_t U32() {
    Need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    p += 4;
    return v;
  }
  std::uint64_t U64() {
    Need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    p += 8;
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  std::string_view Bytes(std::size_t n) {
    Need(n);
    std::string_view v(p, n);
    p += n;
    return v;
  }
};

// One string column: per-block dictionary of unique values + one index per
// record. Dictionary order is first-appearance, so conversion output is
// deterministic for a given input.
void PutStringColumn(std::string* payload,
                     const std::vector<AttackRecord>& records,
                     const std::string& (*get)(const AttackRecord&)) {
  std::unordered_map<std::string_view, std::uint32_t> index;
  std::string dict;
  std::vector<std::uint32_t> idx;
  idx.reserve(records.size());
  for (const AttackRecord& r : records) {
    const std::string& s = get(r);
    auto [it, inserted] =
        index.emplace(s, static_cast<std::uint32_t>(index.size()));
    if (inserted) {
      PutU32(&dict, static_cast<std::uint32_t>(s.size()));
      dict.append(s);
    }
    idx.push_back(it->second);
  }
  PutU32(payload, static_cast<std::uint32_t>(index.size()));
  payload->append(dict);
  for (const std::uint32_t i : idx) PutU32(payload, i);
}

void GetStringColumn(Cursor* cur, std::uint32_t n,
                     std::vector<AttackRecord>* records,
                     std::string AttackRecord::* field) {
  const std::uint32_t m = cur->U32();
  if (m > n) {
    throw BinaryFormatError(Kind::kCorruptField,
                            "string dictionary larger than its block");
  }
  std::vector<std::string_view> dict;
  dict.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t len = cur->U32();
    if (len > io::kMaxStringBytes) {
      throw BinaryFormatError(Kind::kCorruptField,
                              "dictionary string exceeds the length cap");
    }
    dict.push_back(cur->Bytes(len));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t idx = cur->U32();
    if (idx >= m) {
      throw BinaryFormatError(Kind::kCorruptField,
                              "string index outside its dictionary");
    }
    (*records)[i].*field = std::string(dict[idx]);
  }
}

}  // namespace

// --- writer ---

BinaryRecordWriter::BinaryRecordWriter(std::ostream& out,
                                       BinaryWriteOptions opts)
    : out_(&out), opts_(opts) {
  if (opts_.block_records == 0) opts_.block_records = 1;
  out_->write(kMagic, sizeof(kMagic));
  io::WriteU32(*out_, kBinaryRecordVersion);
  io::WriteU32(*out_, static_cast<std::uint32_t>(opts_.block_records));
  if (!*out_) throw std::runtime_error("binrecords: header write failed");
}

BinaryRecordWriter::BinaryRecordWriter(const std::string& path,
                                       BinaryWriteOptions opts)
    : path_(path),
      tmp_path_(path + ".tmp"),
      file_(tmp_path_, std::ios::binary | std::ios::trunc),
      out_(&file_),
      opts_(opts) {
  if (opts_.block_records == 0) opts_.block_records = 1;
  if (!file_) {
    throw std::runtime_error("binrecords: cannot open " + tmp_path_);
  }
  out_->write(kMagic, sizeof(kMagic));
  io::WriteU32(*out_, kBinaryRecordVersion);
  io::WriteU32(*out_, static_cast<std::uint32_t>(opts_.block_records));
  if (!*out_) throw std::runtime_error("binrecords: header write failed");
}

BinaryRecordWriter::~BinaryRecordWriter() {
  if (closed_) return;
  try {
    Close();
  } catch (...) {
    // Close() already removed the stage file on its failure paths.
  }
}

void BinaryRecordWriter::Write(const AttackRecord& record) {
  if (closed_) {
    throw std::logic_error("BinaryRecordWriter: Write after Close");
  }
  pending_.push_back(record);
  ++written_;
  if (pending_.size() >= opts_.block_records) FlushBlock();
}

void BinaryRecordWriter::FlushBlock() {
  if (pending_.empty()) return;
  const std::uint32_t n = static_cast<std::uint32_t>(pending_.size());
  std::string payload;
  for (const AttackRecord& r : pending_) PutU64(&payload, r.ddos_id);
  for (const AttackRecord& r : pending_) PutU32(&payload, r.botnet_id);
  for (const AttackRecord& r : pending_) {
    PutU8(&payload, static_cast<std::uint8_t>(r.family));
  }
  for (const AttackRecord& r : pending_) {
    PutU8(&payload, static_cast<std::uint8_t>(r.category));
  }
  for (const AttackRecord& r : pending_) PutU32(&payload, r.target_ip.bits());
  for (const AttackRecord& r : pending_) {
    PutI64(&payload, r.start_time.seconds());
  }
  for (const AttackRecord& r : pending_) PutI64(&payload, r.end_time.seconds());
  for (const AttackRecord& r : pending_) PutU32(&payload, r.asn.value());
  PutStringColumn(&payload, pending_,
                  +[](const AttackRecord& r) -> const std::string& {
                    return r.cc;
                  });
  PutStringColumn(&payload, pending_,
                  +[](const AttackRecord& r) -> const std::string& {
                    return r.city;
                  });
  for (const AttackRecord& r : pending_) PutF64(&payload, r.location.lat_deg);
  for (const AttackRecord& r : pending_) PutF64(&payload, r.location.lon_deg);
  PutStringColumn(&payload, pending_,
                  +[](const AttackRecord& r) -> const std::string& {
                    return r.organization;
                  });
  for (const AttackRecord& r : pending_) PutU32(&payload, r.magnitude);
  pending_.clear();

  io::Fnv1a64 checksum;
  checksum.Update(payload);
  io::WriteU32(*out_, n);
  io::WriteU64(*out_, payload.size());
  out_->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  io::WriteU64(*out_, checksum.digest());
  if (!*out_) throw std::runtime_error("binrecords: block write failed");
}

void BinaryRecordWriter::Close() {
  if (closed_) return;
  closed_ = true;
  try {
    FlushBlock();
    io::WriteU32(*out_, 0);  // terminator: clean end of stream
    out_->flush();
    if (!*out_) throw std::runtime_error("binrecords: write failed");
  } catch (...) {
    if (!tmp_path_.empty()) {
      file_.close();
      std::remove(tmp_path_.c_str());
    }
    throw;
  }
  if (tmp_path_.empty()) return;
  file_.close();
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("binrecords: cannot rename " + tmp_path_ +
                             " to " + path_);
  }
}

// --- reader ---

BinaryRecordReader::BinaryRecordReader(std::istream& in) : in_(&in) {
  char magic[sizeof(kMagic)];
  if (!in_->read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw BinaryFormatError(Kind::kBadMagic,
                            "not a binary attack-record file");
  }
  char rest[8];  // version + block hint
  if (!in_->read(rest, sizeof(rest))) {
    throw BinaryFormatError(Kind::kTruncated, "header cut short");
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(static_cast<unsigned char>(rest[i]))
               << (8 * i);
  }
  if (version != kBinaryRecordVersion) {
    throw BinaryFormatError(
        Kind::kUnsupportedVersion,
        StrFormat("unsupported version %u (expected %u)", version,
                  kBinaryRecordVersion));
  }
}

BinaryRecordReader::BinaryRecordReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_) {
  if (!file_) throw std::runtime_error("binrecords: cannot open " + path);
  // Re-run the header validation on the member stream.
  char magic[sizeof(kMagic)];
  if (!in_->read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw BinaryFormatError(Kind::kBadMagic,
                            path + " is not a binary attack-record file");
  }
  char rest[8];
  if (!in_->read(rest, sizeof(rest))) {
    throw BinaryFormatError(Kind::kTruncated, "header cut short");
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(static_cast<unsigned char>(rest[i]))
               << (8 * i);
  }
  if (version != kBinaryRecordVersion) {
    throw BinaryFormatError(
        Kind::kUnsupportedVersion,
        StrFormat("unsupported version %u (expected %u)", version,
                  kBinaryRecordVersion));
  }
}

std::uint32_t BinaryRecordReader::LoadBlockRaw() {
  char head[4];
  if (!in_->read(head, sizeof(head))) {
    throw BinaryFormatError(Kind::kTruncated,
                            "stream ended without a terminator block");
  }
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<unsigned char>(head[i]))
         << (8 * i);
  }
  if (n == 0) {
    eof_ = true;
    return 0;
  }
  if (n > kMaxBlockRecords) {
    throw BinaryFormatError(Kind::kCorruptField,
                            StrFormat("implausible block record count %u", n));
  }
  char sz[8];
  if (!in_->read(sz, sizeof(sz))) {
    throw BinaryFormatError(Kind::kTruncated, "block header cut short");
  }
  std::uint64_t payload_size = 0;
  for (int i = 0; i < 8; ++i) {
    payload_size |=
        static_cast<std::uint64_t>(static_cast<unsigned char>(sz[i]))
        << (8 * i);
  }
  if (payload_size > kMaxBlockPayload) {
    throw BinaryFormatError(
        Kind::kCorruptField,
        StrFormat("implausible block payload size %llu",
                  static_cast<unsigned long long>(payload_size)));
  }
  payload_.resize(payload_size);
  if (payload_size > 0 &&
      !in_->read(payload_.data(),
                 static_cast<std::streamsize>(payload_size))) {
    throw BinaryFormatError(Kind::kTruncated, "block payload cut short");
  }
  char ck[8];
  if (!in_->read(ck, sizeof(ck))) {
    throw BinaryFormatError(Kind::kTruncated, "block checksum cut short");
  }
  std::uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    expected |= static_cast<std::uint64_t>(static_cast<unsigned char>(ck[i]))
                << (8 * i);
  }
  io::Fnv1a64 checksum;
  checksum.Update(payload_);
  if (checksum.digest() != expected) {
    throw BinaryFormatError(Kind::kChecksumMismatch,
                            "block checksum mismatch (corrupt data)");
  }
  return n;
}

void BinaryRecordReader::DecodeBlock(std::uint32_t n) {
  Cursor cur{payload_.data(), payload_.data() + payload_.size()};
  block_.assign(n, AttackRecord{});
  block_pos_ = 0;
  for (std::uint32_t i = 0; i < n; ++i) block_[i].ddos_id = cur.U64();
  for (std::uint32_t i = 0; i < n; ++i) block_[i].botnet_id = cur.U32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t f = cur.U8();
    if (f >= kFamilyCount) {
      throw BinaryFormatError(Kind::kCorruptField,
                              StrFormat("family ordinal %u out of range", f));
    }
    block_[i].family = static_cast<Family>(f);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t p = cur.U8();
    if (p >= kProtocolCount) {
      throw BinaryFormatError(
          Kind::kCorruptField,
          StrFormat("protocol ordinal %u out of range", p));
    }
    block_[i].category = static_cast<Protocol>(p);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    block_[i].target_ip = net::IPv4Address(cur.U32());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    block_[i].start_time = TimePoint(cur.I64());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    block_[i].end_time = TimePoint(cur.I64());
  }
  for (std::uint32_t i = 0; i < n; ++i) block_[i].asn = net::Asn(cur.U32());
  GetStringColumn(&cur, n, &block_, &AttackRecord::cc);
  GetStringColumn(&cur, n, &block_, &AttackRecord::city);
  for (std::uint32_t i = 0; i < n; ++i) {
    block_[i].location.lat_deg = cur.F64();
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    block_[i].location.lon_deg = cur.F64();
  }
  GetStringColumn(&cur, n, &block_, &AttackRecord::organization);
  for (std::uint32_t i = 0; i < n; ++i) block_[i].magnitude = cur.U32();
  if (cur.p != cur.end) {
    throw BinaryFormatError(Kind::kCorruptField,
                            "trailing bytes inside a block payload");
  }
}

bool BinaryRecordReader::Next(AttackRecord* out) {
  while (block_pos_ >= block_.size()) {
    if (eof_) return false;
    const std::uint32_t n = LoadBlockRaw();
    if (n == 0) return false;
    DecodeBlock(n);
  }
  *out = block_[block_pos_++];
  ++records_;
  return true;
}

void BinaryRecordReader::SkipRecords(std::uint64_t n) {
  while (n > 0) {
    if (block_pos_ < block_.size()) {
      const std::uint64_t take = std::min<std::uint64_t>(
          n, block_.size() - block_pos_);
      block_pos_ += static_cast<std::size_t>(take);
      records_ += take;
      n -= take;
      continue;
    }
    if (eof_) {
      throw BinaryFormatError(Kind::kTruncated,
                              "resume position beyond end of stream");
    }
    const std::uint32_t blk = LoadBlockRaw();
    if (blk == 0) {
      throw BinaryFormatError(Kind::kTruncated,
                              "resume position beyond end of stream");
    }
    if (blk <= n) {
      // Whole block inside the skip: checksum verified, decode elided.
      records_ += blk;
      n -= blk;
    } else {
      DecodeBlock(blk);
    }
  }
}

std::uint64_t ConvertAttacksCsvToBinary(const std::string& csv_path,
                                        const std::string& bin_path,
                                        const ParseOptions& options,
                                        IngestErrorReport* report,
                                        BinaryWriteOptions write_opts) {
  AttackCsvReader reader(csv_path, options);
  BinaryRecordWriter writer(bin_path, write_opts);
  AttackRecord record;
  while (reader.Next(&record)) writer.Write(record);
  writer.Close();
  if (report != nullptr) {
    for (int k = 0; k < kIngestErrorKindCount; ++k) {
      report->counts[static_cast<std::size_t>(k)] +=
          reader.error_report().counts[static_cast<std::size_t>(k)];
    }
  }
  return writer.written();
}

}  // namespace ddos::data
