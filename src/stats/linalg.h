// Small dense linear algebra for the time-series estimators.
//
// ARIMA fitting (Hannan-Rissanen) reduces to ordinary least squares on a
// design matrix with a handful of columns; Levinson-Durbin needs only
// vectors. A minimal row-major `Matrix` with Gaussian elimination is all the
// machinery required - deliberately no BLAS dependency.
#ifndef DDOSCOPE_STATS_LINALG_H_
#define DDOSCOPE_STATS_LINALG_H_

#include <cstddef>
#include <span>
#include <vector>

namespace ddos::stats {

// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  // A^T * A (cols x cols).
  Matrix Gram() const;
  // A^T * v, where v has `rows()` entries.
  std::vector<double> TransposeTimes(std::span<const double> v) const;
  // A * x, where x has `cols()` entries.
  std::vector<double> Times(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Solves A x = b by Gaussian elimination with partial pivoting. A must be
// square with rows() == b.size(). Throws std::runtime_error if singular
// (pivot below 1e-12 after scaling).
std::vector<double> SolveLinearSystem(Matrix a, std::vector<double> b);

// Ordinary least squares: argmin_x |A x - b|^2 via normal equations with a
// tiny ridge (1e-9 * trace/n) for numerical safety on collinear designs.
std::vector<double> SolveLeastSquares(const Matrix& a, std::span<const double> b);

}  // namespace ddos::stats

#endif  // DDOSCOPE_STATS_LINALG_H_
