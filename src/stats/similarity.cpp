#include "stats/similarity.h"

#include <cmath>
#include <stdexcept>

namespace ddos::stats {

namespace {
void CheckSameNonEmpty(std::span<const double> a, std::span<const double> b,
                       const char* who) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument(std::string(who) +
                                ": inputs must be equal-length and non-empty");
  }
}
}  // namespace

double CosineSimilarity(std::span<const double> a, std::span<const double> b) {
  CheckSameNonEmpty(a, b, "CosineSimilarity");
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double PearsonCorrelation(std::span<const double> a, std::span<const double> b) {
  CheckSameNonEmpty(a, b, "PearsonCorrelation");
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double MeanAbsoluteError(std::span<const double> prediction,
                         std::span<const double> truth) {
  CheckSameNonEmpty(prediction, truth, "MeanAbsoluteError");
  double sum = 0.0;
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    sum += std::abs(prediction[i] - truth[i]);
  }
  return sum / static_cast<double>(prediction.size());
}

double RootMeanSquaredError(std::span<const double> prediction,
                            std::span<const double> truth) {
  CheckSameNonEmpty(prediction, truth, "RootMeanSquaredError");
  double sum = 0.0;
  for (std::size_t i = 0; i < prediction.size(); ++i) {
    const double d = prediction[i] - truth[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(prediction.size()));
}

}  // namespace ddos::stats
