#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ddos::stats {

KsResult KolmogorovSmirnov(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("KolmogorovSmirnov: empty sample");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  // Merge-walk the two sorted samples tracking the CDF gap.
  double d = 0.0;
  std::size_t i = 0, j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }

  KsResult result;
  result.statistic = d;
  // Asymptotic Kolmogorov distribution: P(D > d) ~ 2 sum (-1)^{k-1}
  // exp(-2 k^2 lambda^2) with the Stephens small-sample correction.
  const double n_eff = na * nb / (na + nb);
  const double lambda = (std::sqrt(n_eff) + 0.12 + 0.11 / std::sqrt(n_eff)) * d;
  if (lambda < 1e-3) {  // the alternating series diverges at lambda -> 0
    result.p_value = 1.0;
    return result;
  }
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = sign * std::exp(-2.0 * k * k * lambda * lambda);
    p += term;
    if (std::abs(term) < 1e-12) break;
    sign = -sign;
  }
  result.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return result;
}

double RegularizedGammaQ(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::invalid_argument("RegularizedGammaQ: need a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) {
    // Series for P(a, x); Q = 1 - P.
    double sum = 1.0 / a;
    double term = sum;
    for (int n = 1; n < 500; ++n) {
      term *= x / (a + n);
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-14) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
    return std::clamp(1.0 - p, 0.0, 1.0);
  }
  // Continued fraction for Q(a, x) (Lentz's algorithm).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-14) break;
  }
  return std::clamp(std::exp(-x + a * std::log(x) - std::lgamma(a)) * h, 0.0, 1.0);
}

}  // namespace ddos::stats
