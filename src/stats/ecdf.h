// Empirical cumulative distribution functions.
//
// Most of the paper's figures are CDFs (Figs 3, 5, 7, 9, 17). `Ecdf` owns a
// sorted copy of the sample and answers F(x), quantiles, and produces plot
// series on linear or logarithmic grids matching the paper's axes.
#ifndef DDOSCOPE_STATS_ECDF_H_
#define DDOSCOPE_STATS_ECDF_H_

#include <span>
#include <vector>

namespace ddos::stats {

struct CdfPoint {
  double x = 0.0;
  double f = 0.0;  // P(X <= x)
};

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::span<const double> values);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  // P(X <= x); 0 for empty.
  double FractionAtMost(double x) const;

  // Smallest sample value v with F(v) >= q. Requires non-empty.
  double Quantile(double q) const;

  // `points` samples of the CDF on a linear grid over [min, max].
  std::vector<CdfPoint> LinearSeries(int points) const;

  // `points` samples on a log-spaced grid over [max(min, floor), max];
  // `log_floor` guards against zero samples (the paper plots intervals on a
  // log axis while >50% of intervals are 0; those show up at the floor).
  std::vector<CdfPoint> LogSeries(int points, double log_floor = 1.0) const;

  std::span<const double> sorted_values() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace ddos::stats

#endif  // DDOSCOPE_STATS_ECDF_H_
