#include "stats/linalg.h"

#include <cmath>
#include <stdexcept>

namespace ddos::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) {
        sum += (*this)(r, i) * (*this)(r, j);
      }
      g(i, j) = sum;
      g(j, i) = sum;
    }
  }
  return g;
}

std::vector<double> Matrix::TransposeTimes(std::span<const double> v) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("Matrix::TransposeTimes: size mismatch");
  }
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out[c] += (*this)(r, c) * v[r];
    }
  }
  return out;
}

std::vector<double> Matrix::Times(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::Times: size mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[c];
    out[r] = sum;
  }
  return out;
}

std::vector<double> SolveLinearSystem(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("SolveLinearSystem: shape mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) {
      throw std::runtime_error("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back-substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i > 0; --i) {
    const std::size_t r = i - 1;
    double sum = b[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= a(r, c) * x[c];
    x[r] = sum / a(r, r);
  }
  return x;
}

std::vector<double> SolveLeastSquares(const Matrix& a, std::span<const double> b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("SolveLeastSquares: shape mismatch");
  }
  Matrix gram = a.Gram();
  const std::size_t n = gram.rows();
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += gram(i, i);
  const double ridge = 1e-9 * (trace / static_cast<double>(n) + 1.0);
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += ridge;
  return SolveLinearSystem(std::move(gram), a.TransposeTimes(b));
}

}  // namespace ddos::stats
