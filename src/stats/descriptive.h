// Descriptive statistics: streaming moments and batch summaries.
//
// The paper reports means, medians and standard deviations for intervals
// (mean 3,060 s, sd 39,140 s), durations (mean 10,308 s, median 1,766 s,
// sd 18,475 s) and the geo-dispersion series (Table IV). `StreamingStats`
// uses Welford's algorithm so single-pass aggregation over large traces is
// numerically stable; `Summarize` adds order statistics for batch data.
#ifndef DDOSCOPE_STATS_DESCRIPTIVE_H_
#define DDOSCOPE_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <span>

namespace ddos::stats {

// Single-pass mean/variance/min/max accumulator (Welford).
class StreamingStats {
 public:
  void Add(double x);
  void Merge(const StreamingStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  // The raw second central moment (sum of squared deviations) and its
  // inverse: reconstructing an accumulator from persisted moments. Used by
  // the stream checkpoint layer so a resumed run is bit-identical to an
  // uninterrupted one.
  double m2() const { return m2_; }
  static StreamingStats FromMoments(std::size_t count, double mean, double m2,
                                    double min, double max);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Batch summary; copies and sorts internally. Empty input yields all zeros.
Summary Summarize(std::span<const double> values);

// Linear-interpolated quantile of sorted data, q in [0, 1].
// Requires sorted_values non-empty and ascending.
double QuantileSorted(std::span<const double> sorted_values, double q);

}  // namespace ddos::stats

#endif  // DDOSCOPE_STATS_DESCRIPTIVE_H_
