// Distribution-comparison tests.
//
// Two-sample Kolmogorov-Smirnov: are two samples drawn from the same
// distribution? Used by the validation benches to compare per-family
// duration and interval laws. (The Ljung-Box residual diagnostic lives in
// timeseries/diagnostics.h, next to the models it checks.)
#ifndef DDOSCOPE_STATS_HYPOTHESIS_H_
#define DDOSCOPE_STATS_HYPOTHESIS_H_

#include <span>

namespace ddos::stats {

struct KsResult {
  double statistic = 0.0;  // sup |F1(x) - F2(x)|
  double p_value = 1.0;    // asymptotic (Kolmogorov distribution)
};

// Two-sample KS test. Throws std::invalid_argument if either sample is
// empty. The p-value uses the asymptotic series with the effective sample
// size n1*n2/(n1+n2); accurate for n >= ~20.
KsResult KolmogorovSmirnov(std::span<const double> a, std::span<const double> b);

// Regularized upper incomplete gamma Q(a, x) - the chi-squared survival
// function is Q(k/2, x/2). Exposed for testing.
double RegularizedGammaQ(double a, double x);

}  // namespace ddos::stats

#endif  // DDOSCOPE_STATS_HYPOTHESIS_H_
