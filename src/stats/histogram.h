// Fixed-bin histograms (linear and logarithmic), used for Figs 10-13.
#ifndef DDOSCOPE_STATS_HISTOGRAM_H_
#define DDOSCOPE_STATS_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ddos::stats {

struct HistogramBin {
  double lo = 0.0;  // inclusive
  double hi = 0.0;  // exclusive (last bin inclusive)
  std::uint64_t count = 0;
};

class Histogram {
 public:
  // Linear bins over [lo, hi) with `bins` equal-width cells. Values outside
  // the range are clamped to the first/last bin.
  static Histogram Linear(std::span<const double> values, double lo, double hi,
                          int bins);

  // Log10-spaced bins over [lo, hi); lo must be > 0. Values below lo land in
  // the first bin, above hi in the last.
  static Histogram Log10(std::span<const double> values, double lo, double hi,
                         int bins);

  std::span<const HistogramBin> bins() const { return bins_; }
  std::uint64_t total() const { return total_; }

  // Midpoints-and-count vectors, e.g. as cosine-similarity inputs when
  // comparing a predicted and a ground-truth distribution (Table IV).
  std::vector<double> Midpoints() const;
  std::vector<double> Counts() const;

  // Bin with the highest count (first on ties); -1 when empty.
  int ModeBin() const;

 private:
  std::vector<HistogramBin> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace ddos::stats

#endif  // DDOSCOPE_STATS_HISTOGRAM_H_
