#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ddos::stats {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

StreamingStats StreamingStats::FromMoments(std::size_t count, double mean,
                                           double m2, double min, double max) {
  StreamingStats s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double StreamingStats::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double QuantileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("QuantileSorted: empty input");
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Summary Summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  StreamingStats acc;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) acc.Add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = QuantileSorted(sorted, 0.5);
  s.p25 = QuantileSorted(sorted, 0.25);
  s.p75 = QuantileSorted(sorted, 0.75);
  s.p90 = QuantileSorted(sorted, 0.90);
  s.p99 = QuantileSorted(sorted, 0.99);
  return s;
}

}  // namespace ddos::stats
