#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ddos::stats {

Histogram Histogram::Linear(std::span<const double> values, double lo, double hi,
                            int bins) {
  if (bins <= 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram::Linear: bad range or bin count");
  }
  Histogram h;
  h.bins_.resize(static_cast<std::size_t>(bins));
  const double width = (hi - lo) / bins;
  for (int i = 0; i < bins; ++i) {
    h.bins_[static_cast<std::size_t>(i)].lo = lo + width * i;
    h.bins_[static_cast<std::size_t>(i)].hi = lo + width * (i + 1);
  }
  for (double v : values) {
    int idx = static_cast<int>(std::floor((v - lo) / width));
    idx = std::clamp(idx, 0, bins - 1);
    ++h.bins_[static_cast<std::size_t>(idx)].count;
    ++h.total_;
  }
  return h;
}

Histogram Histogram::Log10(std::span<const double> values, double lo, double hi,
                           int bins) {
  if (bins <= 0 || lo <= 0.0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram::Log10: bad range or bin count");
  }
  Histogram h;
  h.bins_.resize(static_cast<std::size_t>(bins));
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  const double width = (lhi - llo) / bins;
  for (int i = 0; i < bins; ++i) {
    h.bins_[static_cast<std::size_t>(i)].lo = std::pow(10.0, llo + width * i);
    h.bins_[static_cast<std::size_t>(i)].hi = std::pow(10.0, llo + width * (i + 1));
  }
  for (double v : values) {
    int idx;
    if (v <= lo) {
      idx = 0;
    } else {
      idx = static_cast<int>(std::floor((std::log10(v) - llo) / width));
      idx = std::clamp(idx, 0, bins - 1);
    }
    ++h.bins_[static_cast<std::size_t>(idx)].count;
    ++h.total_;
  }
  return h;
}

std::vector<double> Histogram::Midpoints() const {
  std::vector<double> out;
  out.reserve(bins_.size());
  for (const HistogramBin& b : bins_) out.push_back((b.lo + b.hi) / 2.0);
  return out;
}

std::vector<double> Histogram::Counts() const {
  std::vector<double> out;
  out.reserve(bins_.size());
  for (const HistogramBin& b : bins_) out.push_back(static_cast<double>(b.count));
  return out;
}

int Histogram::ModeBin() const {
  if (bins_.empty()) return -1;
  int best = 0;
  for (int i = 1; i < static_cast<int>(bins_.size()); ++i) {
    if (bins_[static_cast<std::size_t>(i)].count >
        bins_[static_cast<std::size_t>(best)].count) {
      best = i;
    }
  }
  return best;
}

}  // namespace ddos::stats
