// Vector similarity measures.
//
// Table IV evaluates the ARIMA source predictor with cosine similarity
// between the predicted and observed dispersion series.
#ifndef DDOSCOPE_STATS_SIMILARITY_H_
#define DDOSCOPE_STATS_SIMILARITY_H_

#include <span>

namespace ddos::stats {

// Cosine similarity of two equal-length vectors; 0 when either has zero
// norm. Throws std::invalid_argument on length mismatch or empty input.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

// Pearson correlation coefficient; 0 when either side has zero variance.
double PearsonCorrelation(std::span<const double> a, std::span<const double> b);

// Mean absolute error and root mean squared error between prediction and
// truth (same length contract as above).
double MeanAbsoluteError(std::span<const double> prediction,
                         std::span<const double> truth);
double RootMeanSquaredError(std::span<const double> prediction,
                            std::span<const double> truth);

}  // namespace ddos::stats

#endif  // DDOSCOPE_STATS_SIMILARITY_H_
