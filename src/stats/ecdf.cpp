#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ddos::stats {

Ecdf::Ecdf(std::span<const double> values)
    : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::FractionAtMost(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Quantile(double q) const {
  if (sorted_.empty()) throw std::logic_error("Ecdf::Quantile on empty ECDF");
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::vector<CdfPoint> Ecdf::LinearSeries(int points) const {
  std::vector<CdfPoint> out;
  if (sorted_.empty() || points < 2) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(points - 1);
    out.push_back(CdfPoint{x, FractionAtMost(x)});
  }
  return out;
}

std::vector<CdfPoint> Ecdf::LogSeries(int points, double log_floor) const {
  std::vector<CdfPoint> out;
  if (sorted_.empty() || points < 2 || log_floor <= 0.0) return out;
  const double lo = std::max(log_floor, 1e-9);
  const double hi = std::max(sorted_.back(), lo * 1.0001);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = std::pow(
        10.0, llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(points - 1));
    out.push_back(CdfPoint{x, FractionAtMost(x)});
  }
  return out;
}

}  // namespace ddos::stats
