file(REMOVE_RECURSE
  "CMakeFiles/chokepoint_test.dir/core/chokepoint_test.cpp.o"
  "CMakeFiles/chokepoint_test.dir/core/chokepoint_test.cpp.o.d"
  "chokepoint_test"
  "chokepoint_test.pdb"
  "chokepoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chokepoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
