# Empty compiler generated dependencies file for chokepoint_test.
# This may be replaced when dependencies are built.
