file(REMOVE_RECURSE
  "CMakeFiles/source_model_test.dir/botsim/source_model_test.cpp.o"
  "CMakeFiles/source_model_test.dir/botsim/source_model_test.cpp.o.d"
  "source_model_test"
  "source_model_test.pdb"
  "source_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
