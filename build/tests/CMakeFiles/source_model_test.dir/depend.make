# Empty dependencies file for source_model_test.
# This may be replaced when dependencies are built.
