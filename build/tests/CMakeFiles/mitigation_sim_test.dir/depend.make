# Empty dependencies file for mitigation_sim_test.
# This may be replaced when dependencies are built.
