file(REMOVE_RECURSE
  "CMakeFiles/mitigation_sim_test.dir/core/mitigation_sim_test.cpp.o"
  "CMakeFiles/mitigation_sim_test.dir/core/mitigation_sim_test.cpp.o.d"
  "mitigation_sim_test"
  "mitigation_sim_test.pdb"
  "mitigation_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
