file(REMOVE_RECURSE
  "CMakeFiles/geodesy_test.dir/geo/geodesy_test.cpp.o"
  "CMakeFiles/geodesy_test.dir/geo/geodesy_test.cpp.o.d"
  "geodesy_test"
  "geodesy_test.pdb"
  "geodesy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geodesy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
