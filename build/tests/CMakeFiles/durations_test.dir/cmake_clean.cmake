file(REMOVE_RECURSE
  "CMakeFiles/durations_test.dir/core/durations_test.cpp.o"
  "CMakeFiles/durations_test.dir/core/durations_test.cpp.o.d"
  "durations_test"
  "durations_test.pdb"
  "durations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
