# Empty compiler generated dependencies file for durations_test.
# This may be replaced when dependencies are built.
