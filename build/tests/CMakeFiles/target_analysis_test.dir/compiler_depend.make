# Empty compiler generated dependencies file for target_analysis_test.
# This may be replaced when dependencies are built.
