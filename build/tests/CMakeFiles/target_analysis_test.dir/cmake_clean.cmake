file(REMOVE_RECURSE
  "CMakeFiles/target_analysis_test.dir/core/target_analysis_test.cpp.o"
  "CMakeFiles/target_analysis_test.dir/core/target_analysis_test.cpp.o.d"
  "target_analysis_test"
  "target_analysis_test.pdb"
  "target_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
