# Empty dependencies file for as_graph_test.
# This may be replaced when dependencies are built.
