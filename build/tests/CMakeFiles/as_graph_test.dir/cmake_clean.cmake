file(REMOVE_RECURSE
  "CMakeFiles/as_graph_test.dir/net/as_graph_test.cpp.o"
  "CMakeFiles/as_graph_test.dir/net/as_graph_test.cpp.o.d"
  "as_graph_test"
  "as_graph_test.pdb"
  "as_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
