# Empty compiler generated dependencies file for geo_analysis_test.
# This may be replaced when dependencies are built.
