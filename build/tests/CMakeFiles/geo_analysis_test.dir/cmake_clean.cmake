file(REMOVE_RECURSE
  "CMakeFiles/geo_analysis_test.dir/core/geo_analysis_test.cpp.o"
  "CMakeFiles/geo_analysis_test.dir/core/geo_analysis_test.cpp.o.d"
  "geo_analysis_test"
  "geo_analysis_test.pdb"
  "geo_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
