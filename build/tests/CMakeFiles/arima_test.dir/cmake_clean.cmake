file(REMOVE_RECURSE
  "CMakeFiles/arima_test.dir/timeseries/arima_test.cpp.o"
  "CMakeFiles/arima_test.dir/timeseries/arima_test.cpp.o.d"
  "arima_test"
  "arima_test.pdb"
  "arima_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arima_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
