file(REMOVE_RECURSE
  "CMakeFiles/overview_test.dir/core/overview_test.cpp.o"
  "CMakeFiles/overview_test.dir/core/overview_test.cpp.o.d"
  "overview_test"
  "overview_test.pdb"
  "overview_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
