# Empty dependencies file for overview_test.
# This may be replaced when dependencies are built.
