
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/dataset_test.cpp" "tests/CMakeFiles/dataset_test.dir/data/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/dataset_test.dir/data/dataset_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ddoscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/botsim/CMakeFiles/ddoscope_botsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddoscope_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/ddoscope_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ddoscope_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddoscope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ddoscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddoscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ddoscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
