file(REMOVE_RECURSE
  "CMakeFiles/collaboration_test.dir/core/collaboration_test.cpp.o"
  "CMakeFiles/collaboration_test.dir/core/collaboration_test.cpp.o.d"
  "collaboration_test"
  "collaboration_test.pdb"
  "collaboration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaboration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
