# Empty compiler generated dependencies file for collaboration_test.
# This may be replaced when dependencies are built.
