file(REMOVE_RECURSE
  "CMakeFiles/report_generator_test.dir/core/report_generator_test.cpp.o"
  "CMakeFiles/report_generator_test.dir/core/report_generator_test.cpp.o.d"
  "report_generator_test"
  "report_generator_test.pdb"
  "report_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
