# Empty dependencies file for report_generator_test.
# This may be replaced when dependencies are built.
