file(REMOVE_RECURSE
  "CMakeFiles/collab_graph_test.dir/core/collab_graph_test.cpp.o"
  "CMakeFiles/collab_graph_test.dir/core/collab_graph_test.cpp.o.d"
  "collab_graph_test"
  "collab_graph_test.pdb"
  "collab_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collab_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
