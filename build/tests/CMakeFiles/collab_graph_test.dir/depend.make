# Empty dependencies file for collab_graph_test.
# This may be replaced when dependencies are built.
