# Empty dependencies file for sessionize_test.
# This may be replaced when dependencies are built.
