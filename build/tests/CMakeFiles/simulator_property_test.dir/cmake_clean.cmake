file(REMOVE_RECURSE
  "CMakeFiles/simulator_property_test.dir/botsim/simulator_property_test.cpp.o"
  "CMakeFiles/simulator_property_test.dir/botsim/simulator_property_test.cpp.o.d"
  "simulator_property_test"
  "simulator_property_test.pdb"
  "simulator_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
