# Empty dependencies file for arima_order_sweep_test.
# This may be replaced when dependencies are built.
