file(REMOVE_RECURSE
  "CMakeFiles/arima_order_sweep_test.dir/timeseries/arima_order_sweep_test.cpp.o"
  "CMakeFiles/arima_order_sweep_test.dir/timeseries/arima_order_sweep_test.cpp.o.d"
  "arima_order_sweep_test"
  "arima_order_sweep_test.pdb"
  "arima_order_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arima_order_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
