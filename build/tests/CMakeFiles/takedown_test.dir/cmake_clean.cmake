file(REMOVE_RECURSE
  "CMakeFiles/takedown_test.dir/core/takedown_test.cpp.o"
  "CMakeFiles/takedown_test.dir/core/takedown_test.cpp.o.d"
  "takedown_test"
  "takedown_test.pdb"
  "takedown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/takedown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
