# Empty dependencies file for bot_analysis_test.
# This may be replaced when dependencies are built.
