file(REMOVE_RECURSE
  "CMakeFiles/bot_analysis_test.dir/core/bot_analysis_test.cpp.o"
  "CMakeFiles/bot_analysis_test.dir/core/bot_analysis_test.cpp.o.d"
  "bot_analysis_test"
  "bot_analysis_test.pdb"
  "bot_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bot_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
