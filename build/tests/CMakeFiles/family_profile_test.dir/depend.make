# Empty dependencies file for family_profile_test.
# This may be replaced when dependencies are built.
