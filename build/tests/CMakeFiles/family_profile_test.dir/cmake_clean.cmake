file(REMOVE_RECURSE
  "CMakeFiles/family_profile_test.dir/botsim/family_profile_test.cpp.o"
  "CMakeFiles/family_profile_test.dir/botsim/family_profile_test.cpp.o.d"
  "family_profile_test"
  "family_profile_test.pdb"
  "family_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
