# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/ddoscope" "generate" "--scale" "0.02" "--days" "30" "--seed" "7" "--out" "/root/repo/build/tools/cli_attacks.csv")
set_tests_properties(cli_generate PROPERTIES  FIXTURES_SETUP "cli_trace" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_summary "/root/repo/build/tools/ddoscope" "summary" "/root/repo/build/tools/cli_attacks.csv")
set_tests_properties(cli_summary PROPERTIES  FIXTURES_REQUIRED "cli_trace" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_predict "/root/repo/build/tools/ddoscope" "predict" "/root/repo/build/tools/cli_attacks.csv")
set_tests_properties(cli_predict PROPERTIES  FIXTURES_REQUIRED "cli_trace" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_collab "/root/repo/build/tools/ddoscope" "collab" "/root/repo/build/tools/cli_attacks.csv")
set_tests_properties(cli_collab PROPERTIES  FIXTURES_REQUIRED "cli_trace" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_query "/root/repo/build/tools/ddoscope" "query" "/root/repo/build/tools/cli_attacks.csv" "--family" "dirtjumper" "--min-duration" "60" "--limit" "5")
set_tests_properties(cli_query PROPERTIES  FIXTURES_REQUIRED "cli_trace" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/ddoscope" "report" "/root/repo/build/tools/cli_attacks.csv" "/root/repo/build/tools/cli_report.md")
set_tests_properties(cli_report PROPERTIES  FIXTURES_REQUIRED "cli_trace" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/ddoscope" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
