file(REMOVE_RECURSE
  "CMakeFiles/ddoscope.dir/ddoscope_cli.cpp.o"
  "CMakeFiles/ddoscope.dir/ddoscope_cli.cpp.o.d"
  "ddoscope"
  "ddoscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
