# Empty compiler generated dependencies file for ddoscope.
# This may be replaced when dependencies are built.
