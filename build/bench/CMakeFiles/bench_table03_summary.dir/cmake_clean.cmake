file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_summary.dir/table03_summary.cpp.o"
  "CMakeFiles/bench_table03_summary.dir/table03_summary.cpp.o.d"
  "bench_table03_summary"
  "bench_table03_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
