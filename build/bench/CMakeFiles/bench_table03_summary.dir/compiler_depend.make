# Empty compiler generated dependencies file for bench_table03_summary.
# This may be replaced when dependencies are built.
