file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_collab_graph.dir/ext_collab_graph.cpp.o"
  "CMakeFiles/bench_ext_collab_graph.dir/ext_collab_graph.cpp.o.d"
  "bench_ext_collab_graph"
  "bench_ext_collab_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_collab_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
