# Empty compiler generated dependencies file for bench_ext_collab_graph.
# This may be replaced when dependencies are built.
