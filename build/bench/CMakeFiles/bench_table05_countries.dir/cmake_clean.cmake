file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_countries.dir/table05_countries.cpp.o"
  "CMakeFiles/bench_table05_countries.dir/table05_countries.cpp.o.d"
  "bench_table05_countries"
  "bench_table05_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
