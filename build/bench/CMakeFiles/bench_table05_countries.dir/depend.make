# Empty dependencies file for bench_table05_countries.
# This may be replaced when dependencies are built.
