# Empty dependencies file for bench_fig02_daily.
# This may be replaced when dependencies are built.
