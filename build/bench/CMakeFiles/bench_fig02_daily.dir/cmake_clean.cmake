file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_daily.dir/fig02_daily.cpp.o"
  "CMakeFiles/bench_fig02_daily.dir/fig02_daily.cpp.o.d"
  "bench_fig02_daily"
  "bench_fig02_daily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_daily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
