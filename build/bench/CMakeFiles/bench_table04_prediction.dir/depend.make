# Empty dependencies file for bench_table04_prediction.
# This may be replaced when dependencies are built.
