file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_prediction.dir/table04_prediction.cpp.o"
  "CMakeFiles/bench_table04_prediction.dir/table04_prediction.cpp.o.d"
  "bench_table04_prediction"
  "bench_table04_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
