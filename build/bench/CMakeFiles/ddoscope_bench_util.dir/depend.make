# Empty dependencies file for ddoscope_bench_util.
# This may be replaced when dependencies are built.
