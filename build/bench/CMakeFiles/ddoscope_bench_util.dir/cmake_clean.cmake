file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ddoscope_bench_util.dir/bench_util.cpp.o.d"
  "CMakeFiles/ddoscope_bench_util.dir/geo_bench_common.cpp.o"
  "CMakeFiles/ddoscope_bench_util.dir/geo_bench_common.cpp.o.d"
  "libddoscope_bench_util.a"
  "libddoscope_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
