file(REMOVE_RECURSE
  "libddoscope_bench_util.a"
)
