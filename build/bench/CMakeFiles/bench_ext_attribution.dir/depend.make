# Empty dependencies file for bench_ext_attribution.
# This may be replaced when dependencies are built.
