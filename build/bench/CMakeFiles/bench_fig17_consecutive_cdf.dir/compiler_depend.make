# Empty compiler generated dependencies file for bench_fig17_consecutive_cdf.
# This may be replaced when dependencies are built.
