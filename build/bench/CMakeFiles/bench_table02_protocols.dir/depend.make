# Empty dependencies file for bench_table02_protocols.
# This may be replaced when dependencies are built.
