file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_protocols.dir/table02_protocols.cpp.o"
  "CMakeFiles/bench_table02_protocols.dir/table02_protocols.cpp.o.d"
  "bench_table02_protocols"
  "bench_table02_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
