# Empty dependencies file for bench_ext_chokepoints.
# This may be replaced when dependencies are built.
