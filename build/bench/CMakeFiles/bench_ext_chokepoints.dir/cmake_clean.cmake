file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_chokepoints.dir/ext_chokepoints.cpp.o"
  "CMakeFiles/bench_ext_chokepoints.dir/ext_chokepoints.cpp.o.d"
  "bench_ext_chokepoints"
  "bench_ext_chokepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_chokepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
