# Empty compiler generated dependencies file for bench_fig09_geo_cdf.
# This may be replaced when dependencies are built.
