# Empty dependencies file for bench_ablation_interval_threshold.
# This may be replaced when dependencies are built.
