# Empty dependencies file for bench_fig15_dirtjumper_collab.
# This may be replaced when dependencies are built.
