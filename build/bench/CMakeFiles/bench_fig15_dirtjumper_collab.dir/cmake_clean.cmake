file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dirtjumper_collab.dir/fig15_dirtjumper_collab.cpp.o"
  "CMakeFiles/bench_fig15_dirtjumper_collab.dir/fig15_dirtjumper_collab.cpp.o.d"
  "bench_fig15_dirtjumper_collab"
  "bench_fig15_dirtjumper_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dirtjumper_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
