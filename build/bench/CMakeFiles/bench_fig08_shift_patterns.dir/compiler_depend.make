# Empty compiler generated dependencies file for bench_fig08_shift_patterns.
# This may be replaced when dependencies are built.
