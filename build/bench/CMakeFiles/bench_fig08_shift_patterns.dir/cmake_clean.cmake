file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_shift_patterns.dir/fig08_shift_patterns.cpp.o"
  "CMakeFiles/bench_fig08_shift_patterns.dir/fig08_shift_patterns.cpp.o.d"
  "bench_fig08_shift_patterns"
  "bench_fig08_shift_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_shift_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
