# Empty dependencies file for bench_fig18_consecutive_timeline.
# This may be replaced when dependencies are built.
