file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_consecutive_timeline.dir/fig18_consecutive_timeline.cpp.o"
  "CMakeFiles/bench_fig18_consecutive_timeline.dir/fig18_consecutive_timeline.cpp.o.d"
  "bench_fig18_consecutive_timeline"
  "bench_fig18_consecutive_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_consecutive_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
