# Empty dependencies file for bench_ext_takedown.
# This may be replaced when dependencies are built.
