file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_takedown.dir/ext_takedown.cpp.o"
  "CMakeFiles/bench_ext_takedown.dir/ext_takedown.cpp.o.d"
  "bench_ext_takedown"
  "bench_ext_takedown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_takedown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
