file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_blackenergy_hist.dir/fig11_blackenergy_hist.cpp.o"
  "CMakeFiles/bench_fig11_blackenergy_hist.dir/fig11_blackenergy_hist.cpp.o.d"
  "bench_fig11_blackenergy_hist"
  "bench_fig11_blackenergy_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_blackenergy_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
