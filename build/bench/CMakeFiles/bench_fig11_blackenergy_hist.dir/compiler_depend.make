# Empty compiler generated dependencies file for bench_fig11_blackenergy_hist.
# This may be replaced when dependencies are built.
