# Empty compiler generated dependencies file for bench_fig16_dj_pandora.
# This may be replaced when dependencies are built.
