file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_dj_pandora.dir/fig16_dj_pandora.cpp.o"
  "CMakeFiles/bench_fig16_dj_pandora.dir/fig16_dj_pandora.cpp.o.d"
  "bench_fig16_dj_pandora"
  "bench_fig16_dj_pandora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_dj_pandora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
