# Empty dependencies file for bench_ext_model_diagnostics.
# This may be replaced when dependencies are built.
