file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_model_diagnostics.dir/ext_model_diagnostics.cpp.o"
  "CMakeFiles/bench_ext_model_diagnostics.dir/ext_model_diagnostics.cpp.o.d"
  "bench_ext_model_diagnostics"
  "bench_ext_model_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_model_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
