file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_interval_clusters.dir/fig04_interval_clusters.cpp.o"
  "CMakeFiles/bench_fig04_interval_clusters.dir/fig04_interval_clusters.cpp.o.d"
  "bench_fig04_interval_clusters"
  "bench_fig04_interval_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_interval_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
