# Empty dependencies file for bench_fig04_interval_clusters.
# This may be replaced when dependencies are built.
