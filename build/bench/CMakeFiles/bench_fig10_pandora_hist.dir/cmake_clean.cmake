file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_pandora_hist.dir/fig10_pandora_hist.cpp.o"
  "CMakeFiles/bench_fig10_pandora_hist.dir/fig10_pandora_hist.cpp.o.d"
  "bench_fig10_pandora_hist"
  "bench_fig10_pandora_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_pandora_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
