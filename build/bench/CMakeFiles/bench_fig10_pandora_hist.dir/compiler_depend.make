# Empty compiler generated dependencies file for bench_fig10_pandora_hist.
# This may be replaced when dependencies are built.
