# Empty dependencies file for bench_ext_trends.
# This may be replaced when dependencies are built.
