file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_trends.dir/ext_trends.cpp.o"
  "CMakeFiles/bench_ext_trends.dir/ext_trends.cpp.o.d"
  "bench_ext_trends"
  "bench_ext_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
