# Empty dependencies file for bench_text_concurrent_stats.
# This may be replaced when dependencies are built.
