file(REMOVE_RECURSE
  "CMakeFiles/bench_text_concurrent_stats.dir/text_concurrent_stats.cpp.o"
  "CMakeFiles/bench_text_concurrent_stats.dir/text_concurrent_stats.cpp.o.d"
  "bench_text_concurrent_stats"
  "bench_text_concurrent_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_concurrent_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
