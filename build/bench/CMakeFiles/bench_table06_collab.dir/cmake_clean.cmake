file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_collab.dir/table06_collab.cpp.o"
  "CMakeFiles/bench_table06_collab.dir/table06_collab.cpp.o.d"
  "bench_table06_collab"
  "bench_table06_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
