file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_durations.dir/fig06_durations.cpp.o"
  "CMakeFiles/bench_fig06_durations.dir/fig06_durations.cpp.o.d"
  "bench_fig06_durations"
  "bench_fig06_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
