# Empty dependencies file for bench_fig06_durations.
# This may be replaced when dependencies are built.
