# Empty compiler generated dependencies file for bench_fig01_attack_types.
# This may be replaced when dependencies are built.
