file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_attack_types.dir/fig01_attack_types.cpp.o"
  "CMakeFiles/bench_fig01_attack_types.dir/fig01_attack_types.cpp.o.d"
  "bench_fig01_attack_types"
  "bench_fig01_attack_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_attack_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
