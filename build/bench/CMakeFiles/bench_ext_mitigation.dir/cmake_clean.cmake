file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mitigation.dir/ext_mitigation.cpp.o"
  "CMakeFiles/bench_ext_mitigation.dir/ext_mitigation.cpp.o.d"
  "bench_ext_mitigation"
  "bench_ext_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
