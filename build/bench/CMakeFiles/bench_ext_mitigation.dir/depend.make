# Empty dependencies file for bench_ext_mitigation.
# This may be replaced when dependencies are built.
