file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_org_hotspots.dir/fig14_org_hotspots.cpp.o"
  "CMakeFiles/bench_fig14_org_hotspots.dir/fig14_org_hotspots.cpp.o.d"
  "bench_fig14_org_hotspots"
  "bench_fig14_org_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_org_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
