# Empty dependencies file for bench_fig14_org_hotspots.
# This may be replaced when dependencies are built.
