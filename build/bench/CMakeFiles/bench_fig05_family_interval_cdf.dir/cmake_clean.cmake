file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_family_interval_cdf.dir/fig05_family_interval_cdf.cpp.o"
  "CMakeFiles/bench_fig05_family_interval_cdf.dir/fig05_family_interval_cdf.cpp.o.d"
  "bench_fig05_family_interval_cdf"
  "bench_fig05_family_interval_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_family_interval_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
