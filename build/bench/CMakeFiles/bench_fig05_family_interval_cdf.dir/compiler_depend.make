# Empty compiler generated dependencies file for bench_fig05_family_interval_cdf.
# This may be replaced when dependencies are built.
