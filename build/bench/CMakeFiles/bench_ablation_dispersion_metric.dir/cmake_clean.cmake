file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dispersion_metric.dir/ablation_dispersion_metric.cpp.o"
  "CMakeFiles/bench_ablation_dispersion_metric.dir/ablation_dispersion_metric.cpp.o.d"
  "bench_ablation_dispersion_metric"
  "bench_ablation_dispersion_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dispersion_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
