# Empty dependencies file for bench_fig12_pandora_predict.
# This may be replaced when dependencies are built.
