file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_pandora_predict.dir/fig12_pandora_predict.cpp.o"
  "CMakeFiles/bench_fig12_pandora_predict.dir/fig12_pandora_predict.cpp.o.d"
  "bench_fig12_pandora_predict"
  "bench_fig12_pandora_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pandora_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
