# Empty dependencies file for bench_fig13_blackenergy_predict.
# This may be replaced when dependencies are built.
