file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_blackenergy_predict.dir/fig13_blackenergy_predict.cpp.o"
  "CMakeFiles/bench_fig13_blackenergy_predict.dir/fig13_blackenergy_predict.cpp.o.d"
  "bench_fig13_blackenergy_predict"
  "bench_fig13_blackenergy_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_blackenergy_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
