file(REMOVE_RECURSE
  "libddoscope_ts.a"
)
