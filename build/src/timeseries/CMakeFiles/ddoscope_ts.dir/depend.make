# Empty dependencies file for ddoscope_ts.
# This may be replaced when dependencies are built.
