file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_ts.dir/acf.cpp.o"
  "CMakeFiles/ddoscope_ts.dir/acf.cpp.o.d"
  "CMakeFiles/ddoscope_ts.dir/arima.cpp.o"
  "CMakeFiles/ddoscope_ts.dir/arima.cpp.o.d"
  "CMakeFiles/ddoscope_ts.dir/diagnostics.cpp.o"
  "CMakeFiles/ddoscope_ts.dir/diagnostics.cpp.o.d"
  "libddoscope_ts.a"
  "libddoscope_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
