# Empty dependencies file for ddoscope_stats.
# This may be replaced when dependencies are built.
