file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_stats.dir/descriptive.cpp.o"
  "CMakeFiles/ddoscope_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/ddoscope_stats.dir/ecdf.cpp.o"
  "CMakeFiles/ddoscope_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/ddoscope_stats.dir/histogram.cpp.o"
  "CMakeFiles/ddoscope_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/ddoscope_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/ddoscope_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/ddoscope_stats.dir/linalg.cpp.o"
  "CMakeFiles/ddoscope_stats.dir/linalg.cpp.o.d"
  "CMakeFiles/ddoscope_stats.dir/similarity.cpp.o"
  "CMakeFiles/ddoscope_stats.dir/similarity.cpp.o.d"
  "libddoscope_stats.a"
  "libddoscope_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
