file(REMOVE_RECURSE
  "libddoscope_stats.a"
)
