file(REMOVE_RECURSE
  "libddoscope_botsim.a"
)
