
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/botsim/family_profile.cpp" "src/botsim/CMakeFiles/ddoscope_botsim.dir/family_profile.cpp.o" "gcc" "src/botsim/CMakeFiles/ddoscope_botsim.dir/family_profile.cpp.o.d"
  "/root/repo/src/botsim/simulator.cpp" "src/botsim/CMakeFiles/ddoscope_botsim.dir/simulator.cpp.o" "gcc" "src/botsim/CMakeFiles/ddoscope_botsim.dir/simulator.cpp.o.d"
  "/root/repo/src/botsim/source_model.cpp" "src/botsim/CMakeFiles/ddoscope_botsim.dir/source_model.cpp.o" "gcc" "src/botsim/CMakeFiles/ddoscope_botsim.dir/source_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddoscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddoscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ddoscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ddoscope_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
