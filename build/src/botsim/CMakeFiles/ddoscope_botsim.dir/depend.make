# Empty dependencies file for ddoscope_botsim.
# This may be replaced when dependencies are built.
