file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_botsim.dir/family_profile.cpp.o"
  "CMakeFiles/ddoscope_botsim.dir/family_profile.cpp.o.d"
  "CMakeFiles/ddoscope_botsim.dir/simulator.cpp.o"
  "CMakeFiles/ddoscope_botsim.dir/simulator.cpp.o.d"
  "CMakeFiles/ddoscope_botsim.dir/source_model.cpp.o"
  "CMakeFiles/ddoscope_botsim.dir/source_model.cpp.o.d"
  "libddoscope_botsim.a"
  "libddoscope_botsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_botsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
