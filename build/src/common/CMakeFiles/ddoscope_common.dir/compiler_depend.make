# Empty compiler generated dependencies file for ddoscope_common.
# This may be replaced when dependencies are built.
