file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_common.dir/rng.cpp.o"
  "CMakeFiles/ddoscope_common.dir/rng.cpp.o.d"
  "CMakeFiles/ddoscope_common.dir/strings.cpp.o"
  "CMakeFiles/ddoscope_common.dir/strings.cpp.o.d"
  "CMakeFiles/ddoscope_common.dir/time.cpp.o"
  "CMakeFiles/ddoscope_common.dir/time.cpp.o.d"
  "libddoscope_common.a"
  "libddoscope_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
