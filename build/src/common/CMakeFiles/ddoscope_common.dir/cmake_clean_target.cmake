file(REMOVE_RECURSE
  "libddoscope_common.a"
)
