file(REMOVE_RECURSE
  "libddoscope_net.a"
)
