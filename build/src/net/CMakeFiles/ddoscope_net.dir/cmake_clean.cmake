file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_net.dir/ipv4.cpp.o"
  "CMakeFiles/ddoscope_net.dir/ipv4.cpp.o.d"
  "libddoscope_net.a"
  "libddoscope_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
