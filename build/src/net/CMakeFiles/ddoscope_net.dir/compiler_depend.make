# Empty compiler generated dependencies file for ddoscope_net.
# This may be replaced when dependencies are built.
