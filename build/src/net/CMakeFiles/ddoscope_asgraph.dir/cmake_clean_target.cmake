file(REMOVE_RECURSE
  "libddoscope_asgraph.a"
)
