# Empty compiler generated dependencies file for ddoscope_asgraph.
# This may be replaced when dependencies are built.
