file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_asgraph.dir/as_graph.cpp.o"
  "CMakeFiles/ddoscope_asgraph.dir/as_graph.cpp.o.d"
  "libddoscope_asgraph.a"
  "libddoscope_asgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_asgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
