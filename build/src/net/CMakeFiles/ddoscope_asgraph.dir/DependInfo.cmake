
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/as_graph.cpp" "src/net/CMakeFiles/ddoscope_asgraph.dir/as_graph.cpp.o" "gcc" "src/net/CMakeFiles/ddoscope_asgraph.dir/as_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ddoscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ddoscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ddoscope_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
