# Empty dependencies file for ddoscope_data.
# This may be replaced when dependencies are built.
