
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/ddoscope_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/ddoscope_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/ddoscope_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/ddoscope_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/query.cpp" "src/data/CMakeFiles/ddoscope_data.dir/query.cpp.o" "gcc" "src/data/CMakeFiles/ddoscope_data.dir/query.cpp.o.d"
  "/root/repo/src/data/taxonomy.cpp" "src/data/CMakeFiles/ddoscope_data.dir/taxonomy.cpp.o" "gcc" "src/data/CMakeFiles/ddoscope_data.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddoscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddoscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ddoscope_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
