file(REMOVE_RECURSE
  "libddoscope_data.a"
)
