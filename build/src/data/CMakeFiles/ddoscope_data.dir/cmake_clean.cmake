file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_data.dir/csv.cpp.o"
  "CMakeFiles/ddoscope_data.dir/csv.cpp.o.d"
  "CMakeFiles/ddoscope_data.dir/dataset.cpp.o"
  "CMakeFiles/ddoscope_data.dir/dataset.cpp.o.d"
  "CMakeFiles/ddoscope_data.dir/query.cpp.o"
  "CMakeFiles/ddoscope_data.dir/query.cpp.o.d"
  "CMakeFiles/ddoscope_data.dir/taxonomy.cpp.o"
  "CMakeFiles/ddoscope_data.dir/taxonomy.cpp.o.d"
  "libddoscope_data.a"
  "libddoscope_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
