file(REMOVE_RECURSE
  "libddoscope_core.a"
)
