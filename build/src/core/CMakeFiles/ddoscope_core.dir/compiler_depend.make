# Empty compiler generated dependencies file for ddoscope_core.
# This may be replaced when dependencies are built.
