
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attribution.cpp" "src/core/CMakeFiles/ddoscope_core.dir/attribution.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/attribution.cpp.o.d"
  "/root/repo/src/core/bot_analysis.cpp" "src/core/CMakeFiles/ddoscope_core.dir/bot_analysis.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/bot_analysis.cpp.o.d"
  "/root/repo/src/core/chokepoint.cpp" "src/core/CMakeFiles/ddoscope_core.dir/chokepoint.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/chokepoint.cpp.o.d"
  "/root/repo/src/core/collab_graph.cpp" "src/core/CMakeFiles/ddoscope_core.dir/collab_graph.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/collab_graph.cpp.o.d"
  "/root/repo/src/core/collaboration.cpp" "src/core/CMakeFiles/ddoscope_core.dir/collaboration.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/collaboration.cpp.o.d"
  "/root/repo/src/core/defense.cpp" "src/core/CMakeFiles/ddoscope_core.dir/defense.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/defense.cpp.o.d"
  "/root/repo/src/core/durations.cpp" "src/core/CMakeFiles/ddoscope_core.dir/durations.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/durations.cpp.o.d"
  "/root/repo/src/core/geo_analysis.cpp" "src/core/CMakeFiles/ddoscope_core.dir/geo_analysis.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/geo_analysis.cpp.o.d"
  "/root/repo/src/core/intervals.cpp" "src/core/CMakeFiles/ddoscope_core.dir/intervals.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/intervals.cpp.o.d"
  "/root/repo/src/core/mitigation_sim.cpp" "src/core/CMakeFiles/ddoscope_core.dir/mitigation_sim.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/mitigation_sim.cpp.o.d"
  "/root/repo/src/core/overview.cpp" "src/core/CMakeFiles/ddoscope_core.dir/overview.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/overview.cpp.o.d"
  "/root/repo/src/core/prediction.cpp" "src/core/CMakeFiles/ddoscope_core.dir/prediction.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/prediction.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ddoscope_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/report.cpp.o.d"
  "/root/repo/src/core/report_generator.cpp" "src/core/CMakeFiles/ddoscope_core.dir/report_generator.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/report_generator.cpp.o.d"
  "/root/repo/src/core/sessionize.cpp" "src/core/CMakeFiles/ddoscope_core.dir/sessionize.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/sessionize.cpp.o.d"
  "/root/repo/src/core/takedown.cpp" "src/core/CMakeFiles/ddoscope_core.dir/takedown.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/takedown.cpp.o.d"
  "/root/repo/src/core/target_analysis.cpp" "src/core/CMakeFiles/ddoscope_core.dir/target_analysis.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/target_analysis.cpp.o.d"
  "/root/repo/src/core/trends.cpp" "src/core/CMakeFiles/ddoscope_core.dir/trends.cpp.o" "gcc" "src/core/CMakeFiles/ddoscope_core.dir/trends.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ddoscope_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddoscope_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ddoscope_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddoscope_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/ddoscope_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ddoscope_data.dir/DependInfo.cmake"
  "/root/repo/build/src/botsim/CMakeFiles/ddoscope_botsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddoscope_asgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
