file(REMOVE_RECURSE
  "CMakeFiles/ddoscope_geo.dir/catalog.cpp.o"
  "CMakeFiles/ddoscope_geo.dir/catalog.cpp.o.d"
  "CMakeFiles/ddoscope_geo.dir/geo_db.cpp.o"
  "CMakeFiles/ddoscope_geo.dir/geo_db.cpp.o.d"
  "CMakeFiles/ddoscope_geo.dir/geodesy.cpp.o"
  "CMakeFiles/ddoscope_geo.dir/geodesy.cpp.o.d"
  "libddoscope_geo.a"
  "libddoscope_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddoscope_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
