# Empty dependencies file for ddoscope_geo.
# This may be replaced when dependencies are built.
