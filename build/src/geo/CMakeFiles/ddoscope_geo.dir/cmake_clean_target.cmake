file(REMOVE_RECURSE
  "libddoscope_geo.a"
)
