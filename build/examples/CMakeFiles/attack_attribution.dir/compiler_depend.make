# Empty compiler generated dependencies file for attack_attribution.
# This may be replaced when dependencies are built.
