file(REMOVE_RECURSE
  "CMakeFiles/attack_attribution.dir/attack_attribution.cpp.o"
  "CMakeFiles/attack_attribution.dir/attack_attribution.cpp.o.d"
  "attack_attribution"
  "attack_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
