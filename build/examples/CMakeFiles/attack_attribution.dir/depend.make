# Empty dependencies file for attack_attribution.
# This may be replaced when dependencies are built.
