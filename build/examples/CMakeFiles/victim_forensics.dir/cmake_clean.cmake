file(REMOVE_RECURSE
  "CMakeFiles/victim_forensics.dir/victim_forensics.cpp.o"
  "CMakeFiles/victim_forensics.dir/victim_forensics.cpp.o.d"
  "victim_forensics"
  "victim_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/victim_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
