# Empty compiler generated dependencies file for victim_forensics.
# This may be replaced when dependencies are built.
