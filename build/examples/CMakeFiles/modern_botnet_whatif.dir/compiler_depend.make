# Empty compiler generated dependencies file for modern_botnet_whatif.
# This may be replaced when dependencies are built.
