file(REMOVE_RECURSE
  "CMakeFiles/modern_botnet_whatif.dir/modern_botnet_whatif.cpp.o"
  "CMakeFiles/modern_botnet_whatif.dir/modern_botnet_whatif.cpp.o.d"
  "modern_botnet_whatif"
  "modern_botnet_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modern_botnet_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
