# Empty compiler generated dependencies file for source_prediction.
# This may be replaced when dependencies are built.
