file(REMOVE_RECURSE
  "CMakeFiles/source_prediction.dir/source_prediction.cpp.o"
  "CMakeFiles/source_prediction.dir/source_prediction.cpp.o.d"
  "source_prediction"
  "source_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
