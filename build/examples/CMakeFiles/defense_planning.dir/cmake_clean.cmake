file(REMOVE_RECURSE
  "CMakeFiles/defense_planning.dir/defense_planning.cpp.o"
  "CMakeFiles/defense_planning.dir/defense_planning.cpp.o.d"
  "defense_planning"
  "defense_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
